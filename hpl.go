// Package hpl is a Go implementation of Chandy & Misra's "How Processes
// Learn" (PODC 1985): the event/trace model of asynchronous
// message-passing computation, isomorphism between computations with
// respect to process sets, process chains (happened-before), fusion of
// computations, and knowledge defined extensionally from isomorphism —
// together with exhaustive model checkers for every theorem in the paper
// and simulation harnesses for its §5 applications (tracking, failure
// detection, termination detection).
//
// # Quick start
//
//	// Build a computation: p sends to q, q receives.
//	c := hpl.NewBuilder().Send("p", "q", "m").Receive("q", "p").MustBuild()
//
//	// Open a checking session: enumerate every computation of a small
//	// system (in parallel, cancellable via WithContext) and ask an
//	// epistemic question.
//	ck, err := hpl.CheckProtocol(hpl.NewFree(hpl.FreeConfig{
//	    Procs: []hpl.ProcID{"p", "q"}, MaxSends: 1,
//	}), hpl.WithMaxEvents(4), hpl.WithParallelism(4))
//	if err != nil { ... }
//	b := hpl.NewAtom(hpl.SentTag("p", "m"))
//	knows := ck.MustHolds(hpl.Knows(hpl.NewProcSet("q"), b), c) // true
//
//	// The same question in the textual formula language.
//	ck.Define(hpl.SentTag("p", "m"))
//	rep, err := ck.ParseAndCheck(`K{q} "sent(p,m)" -> "sent(p,m)"`)
//	valid := rep.Valid() // true: knowledge implies truth
//
//	// Temporal questions run over the prefix-extension transition
//	// graph: the gain theorem says q learns b only after the message
//	// arrives, checkable as one temporal validity.
//	ck.Define(hpl.ReceivedTag("q", "m"))
//	trep, err := ck.ParseAndCheckTemporal(
//	    `AG (K{q} "sent(p,m)" -> Once "received(q,m)")`)
//	holds := trep.AtInit // true
//
// The facade re-exports the stable core of the internal packages; the
// experiment harnesses live in cmd/hpl-experiments and the runnable
// examples in examples/.
package hpl

import (
	"context"
	"io"

	"hpl/internal/diagram"
	"hpl/internal/fusion"
	"hpl/internal/iso"
	"hpl/internal/knowledge"
	"hpl/internal/logic"
	"hpl/internal/obs"
	"hpl/internal/trace"
	"hpl/internal/universe"
)

// --- Model (package trace) ---

// Core model types.
type (
	// ProcID identifies a process.
	ProcID = trace.ProcID
	// ProcSet is an immutable set of processes.
	ProcSet = trace.ProcSet
	// Event is a send, receive, or internal event on one process.
	Event = trace.Event
	// Kind classifies events.
	Kind = trace.Kind
	// MsgID identifies a message.
	MsgID = trace.MsgID
	// EventID identifies an event within a computation.
	EventID = trace.EventID
	// Computation is a validated system computation.
	Computation = trace.Computation
	// Builder incrementally constructs computations.
	Builder = trace.Builder
)

// Event kinds.
const (
	KindInternal = trace.KindInternal
	KindSend     = trace.KindSend
	KindReceive  = trace.KindReceive
)

// NewProcSet builds a process set.
func NewProcSet(ids ...ProcID) ProcSet { return trace.NewProcSet(ids...) }

// Singleton returns {p}.
func Singleton(p ProcID) ProcSet { return trace.Singleton(p) }

// Empty returns the empty computation (the paper's "null").
func Empty() *Computation { return trace.Empty() }

// NewComputation validates an event sequence as a system computation.
func NewComputation(events []Event) (*Computation, error) { return trace.NewComputation(events) }

// NewBuilder returns an empty computation builder.
func NewBuilder() *Builder { return trace.NewBuilder() }

// FromComputation returns a builder that extends c.
func FromComputation(c *Computation) *Builder { return trace.FromComputation(c) }

// --- Universes (package universe) ---

type (
	// Universe is an exhaustively enumerated, indexed set of
	// computations of one system — the quantification domain for
	// knowledge.
	Universe = universe.Universe
	// Protocol describes a system as per-process state machines for
	// enumeration.
	Protocol = universe.Protocol
	// Action is a spontaneous protocol step.
	Action = universe.Action
	// FreeConfig parameterizes the unconstrained reference system.
	FreeConfig = universe.FreeConfig
)

// NewUniverse builds a universe from computations with D = all.
func NewUniverse(comps []*Computation, all ProcSet) *Universe { return universe.New(comps, all) }

// NewFree returns the Protocol of the free system described by cfg: the
// least-constrained system of the model, in which every process may
// send bounded numbers of messages, perform bounded internal events,
// and receive whatever is in flight.
func NewFree(cfg FreeConfig) Protocol { return universe.NewFree(cfg) }

// Enumeration options (see EnumerateWith and CheckProtocol).
type (
	// EnumOption configures an enumeration.
	EnumOption = universe.Option
	// EnumProgress is a snapshot of a running enumeration.
	EnumProgress = universe.Progress
)

// ErrUniverseTooLarge reports an enumeration that exceeded its WithCap
// bound.
var ErrUniverseTooLarge = universe.ErrTooLarge

// WithMaxEvents bounds every enumerated computation to at most n events.
func WithMaxEvents(n int) EnumOption { return universe.WithMaxEvents(n) }

// WithCap fails the enumeration with ErrUniverseTooLarge when more than
// n distinct computations would be produced; n <= 0 disables the cap.
func WithCap(n int) EnumOption { return universe.WithCap(n) }

// WithParallelism enumerates on n workers; the resulting universe is
// identical for every n.
func WithParallelism(n int) EnumOption { return universe.WithParallelism(n) }

// WithContext makes the enumeration cancellable: when ctx ends, the
// enumeration stops promptly and returns ctx.Err().
func WithContext(ctx context.Context) EnumOption { return universe.WithContext(ctx) }

// WithProgress installs a progress callback (serialized by the engine).
func WithProgress(fn func(EnumProgress)) EnumOption { return universe.WithProgress(fn) }

// WithHashVerify makes the engine verify every 128-bit dedup hash hit
// against full canonical keys, failing with universe.ErrHashCollision
// on a mismatch. A debug option: collisions have probability ~2^-128.
func WithHashVerify() EnumOption { return universe.WithHashVerify() }

// Trace accumulates named per-phase wall times for a build (frontier
// expansion, canonical sort, partition/transition construction,
// snapshot encode, symmetry filtering). Attach one with WithTrace and
// print Trace.String for the breakdown (`mck -trace` does exactly
// this). A nil *Trace is valid everywhere and records nothing.
type Trace = obs.Trace

// TracePhase is one accumulated phase of a Trace.
type TracePhase = obs.PhaseStat

// NewTrace returns an empty build trace for WithTrace.
func NewTrace() *Trace { return obs.NewTrace() }

// WithTrace attaches tr to the enumeration: the engine's phases land in
// it, and it rides on the resulting universe so later lazily built
// structures (partition tables, the transition graph, snapshot encodes)
// join the same breakdown. Cheap enough to leave on in production; the
// same data feeds the process-wide /metrics exposition either way.
func WithTrace(tr *Trace) EnumOption { return universe.WithTrace(tr) }

// --- Symmetry reduction ---

// Symmetry is a group of process renamings a protocol is invariant
// under, declared as classes of interchangeable processes. Enumerating
// WithSymmetry keeps one canonical representative per renaming orbit —
// a quotient universe — with each member's orbit size recorded, so
// symmetric questions cost a fraction of the full universe.
type Symmetry = universe.Symmetry

// NewSymmetry declares the group generated by freely permuting each
// class of interchangeable processes. Classes must be disjoint;
// singleton classes are dropped. The group order is capped at 8!.
func NewSymmetry(classes ...[]ProcID) (*Symmetry, error) { return universe.NewSymmetry(classes...) }

// FullSymmetry declares all of the given processes interchangeable.
func FullSymmetry(procs ...ProcID) (*Symmetry, error) { return universe.FullSymmetry(procs...) }

// InferSymmetry returns the symmetry a protocol declares for itself
// (free systems declare all processes interchangeable), or nil.
func InferSymmetry(p Protocol) *Symmetry { return universe.InferSymmetry(p) }

// WithSymmetry enumerates the quotient of the universe under the group:
// only orbit-canonical computations are kept, with Universe.OrbitSize
// recording how many full-universe members each stands for and
// Universe.FullSize the total. The protocol must be invariant under the
// group (classes with differing Init are rejected; step-rule invariance
// is the caller's assertion). Quotients evaluate symmetric formulas
// only — see Checker.ValidateSymmetric and AsymmetryError.
func WithSymmetry(g *Symmetry) EnumOption { return universe.WithSymmetry(g) }

// AsymmetryError reports a formula rejected on a symmetry quotient
// because some part of it distinguishes processes the quotient's group
// identifies.
type AsymmetryError = knowledge.AsymmetryError

// EnumerateWith exhaustively generates the protocol's computations
// under the given options.
func EnumerateWith(p Protocol, opts ...EnumOption) (*Universe, error) {
	return universe.EnumerateWith(p, opts...)
}

// MustEnumerateWith is EnumerateWith for configurations known to
// succeed; it panics on error.
func MustEnumerateWith(p Protocol, opts ...EnumOption) *Universe {
	return universe.MustEnumerateWith(p, opts...)
}

// --- Incremental extension & snapshots ---

// ErrCannotExtend reports an ExtendUniverse call on a universe missing
// what incremental enumeration needs (a bound protocol, a known event
// bound, or frontier state).
var ErrCannotExtend = universe.ErrCannotExtend

// Snapshot decode errors, from most to least structural: not a
// snapshot at all, incompatible codec version, ends mid-structure,
// fails the checksum or decodes out of range.
var (
	ErrSnapshotFormat    = universe.ErrSnapshotFormat
	ErrSnapshotVersion   = universe.ErrSnapshotVersion
	ErrSnapshotTruncated = universe.ErrSnapshotTruncated
	ErrSnapshotCorrupt   = universe.ErrSnapshotCorrupt
)

// ExtendUniverse enumerates u's protocol at a larger event bound by
// re-seeding the engine from u's maximal members, enumerating only the
// new frontier. The result is byte-identical — member order, Partition
// tables, Transitions — to a from-scratch EnumerateWith at the larger
// bound. Options are interpreted as for EnumerateWith; u is unchanged.
func ExtendUniverse(u *Universe, opts ...EnumOption) (*Universe, error) {
	return universe.Extend(u, opts...)
}

// WriteSnapshot writes an enumerated universe — members, state table,
// built partition tables, transition graph — to w in the versioned,
// checksummed binary snapshot format, keyed by digest (normally a
// UniverseSpec digest).
func WriteSnapshot(w io.Writer, u *Universe, digest string) error {
	return universe.WriteSnapshot(w, u, digest)
}

// ReadSnapshot loads a universe and its digest key from r, in
// milliseconds rather than re-enumeration time. The loaded universe
// answers every query the original did; call Universe.BindProtocol to
// make it extendable again.
func ReadSnapshot(r io.Reader) (*Universe, string, error) {
	return universe.ReadSnapshot(r)
}

// --- Transitions (temporal substrate) ---

// Transitions is the prefix-extension transition graph of a universe:
// member i steps to member j exactly when j extends i by one event.
// Obtain it with Universe.Transitions(); the temporal operators below
// are interpreted over it.
type Transitions = universe.Transitions

// --- Isomorphism (package iso) ---

// Reachable returns the members related to x by the composite relation
// [sets[0] … sets[n-1]].
func Reachable(u *Universe, x *Computation, sets []ProcSet) []int {
	return iso.Reachable(u, x, sets)
}

// Related reports x [sets…] z over the universe.
func Related(u *Universe, x *Computation, sets []ProcSet, z *Computation) bool {
	return iso.Related(u, x, sets, z)
}

// LargestLabel returns the largest P ⊆ procs with x [P] y — the edge
// label of the isomorphism diagram.
func LargestLabel(x, y *Computation, procs ProcSet) ProcSet {
	return iso.LargestLabel(x, y, procs)
}

// --- Fusion (package fusion) ---

type (
	// Square is the commuting diagram of Lemma 1 (Figure 3-2).
	Square = fusion.Square
	// Fusion is the result of Theorem 2 (Figure 3-3).
	Fusion = fusion.Fusion
)

// Lemma1 fuses y and z over their common prefix x (see fusion.Lemma1).
func Lemma1(x, y, z *Computation, p, q, all ProcSet) (Square, error) {
	return fusion.Lemma1(x, y, z, p, q, all)
}

// Theorem2 fuses arbitrary extensions under chain-absence preconditions
// (see fusion.Theorem2).
func Theorem2(x, y, z *Computation, p, all ProcSet) (Fusion, error) {
	return fusion.Theorem2(x, y, z, p, all)
}

// --- Knowledge (package knowledge) ---

type (
	// Formula is an epistemic formula.
	Formula = knowledge.Formula
	// Predicate is a total predicate on computations.
	Predicate = knowledge.Predicate
	// Evaluator evaluates formulas over a universe.
	Evaluator = knowledge.Evaluator
)

// NewEvaluator builds an evaluator over the universe.
func NewEvaluator(u *Universe) *Evaluator { return knowledge.NewEvaluator(u) }

// NewPredicate builds a predicate from a name and evaluation function.
func NewPredicate(name string, fn func(*Computation) bool) Predicate {
	return knowledge.NewPredicate(name, fn)
}

// Formula constructors.
var (
	// True and False are the constant formulas.
	True  = knowledge.True
	False = knowledge.False
)

// NewAtom lifts a predicate to a formula.
func NewAtom(p Predicate) Formula { return knowledge.NewAtom(p) }

// Not negates f.
func Not(f Formula) Formula { return knowledge.Not(f) }

// And conjoins formulas.
func And(fs ...Formula) Formula { return knowledge.And(fs...) }

// Or disjoins formulas.
func Or(fs ...Formula) Formula { return knowledge.Or(fs...) }

// Implies builds l → r.
func Implies(l, r Formula) Formula { return knowledge.Implies(l, r) }

// Knows builds (P knows f): f holds at every computation isomorphic to
// the current one with respect to P.
func Knows(p ProcSet, f Formula) Formula { return knowledge.Knows(p, f) }

// Sure builds (P sure f): P knows f or P knows ¬f.
func Sure(p ProcSet, f Formula) Formula { return knowledge.Sure(p, f) }

// Common builds common knowledge of f among all processes.
func Common(f Formula) Formula { return knowledge.Common(f) }

// Temporal operators, interpreted over the universe's prefix-extension
// transition graph (see Transitions): one step extends the computation
// by one event, so the future modalities quantify over extensions and
// the past ones over prefixes. They compose freely with the epistemic
// operators — AG(Knows(q,b) → Once(r)) is the paper's knowledge-gain
// theorem as a temporal validity. Check them with Checker.CheckTemporal.

// EX builds ∃◯f: some one-event extension satisfies f.
func EX(f Formula) Formula { return knowledge.EX(f) }

// AX builds ∀◯f: every one-event extension satisfies f.
func AX(f Formula) Formula { return knowledge.AX(f) }

// EF builds ∃◇f: some extension (including the present) satisfies f.
func EF(f Formula) Formula { return knowledge.EF(f) }

// AF builds ∀◇f: every maximal extension path satisfies f somewhere.
func AF(f Formula) Formula { return knowledge.AF(f) }

// EG builds ∃□f: some maximal extension path satisfies f throughout.
func EG(f Formula) Formula { return knowledge.EG(f) }

// AG builds ∀□f: f holds now and at every extension.
func AG(f Formula) Formula { return knowledge.AG(f) }

// EU builds E[l U r]: some extension path reaches r with l holding
// until then.
func EU(l, r Formula) Formula { return knowledge.EU(l, r) }

// AU builds A[l U r]: every maximal extension path reaches r with l
// holding until then.
func AU(l, r Formula) Formula { return knowledge.AU(l, r) }

// EY builds ∃●f: the one-event-shorter prefix satisfies f.
func EY(f Formula) Formula { return knowledge.EY(f) }

// AY builds ∀●f: f at the prefix, vacuously true at null.
func AY(f Formula) Formula { return knowledge.AY(f) }

// Once builds ◆f: f holds now or held at some prefix.
func Once(f Formula) Formula { return knowledge.Once(f) }

// Hist builds ■f: f holds now and held at every prefix.
func Hist(f Formula) Formula { return knowledge.Hist(f) }

// Standard predicates.

// SentTag holds when p has sent a message tagged tag.
func SentTag(p ProcID, tag string) Predicate { return knowledge.SentTag(p, tag) }

// ReceivedTag holds when p has received a message tagged tag.
func ReceivedTag(p ProcID, tag string) Predicate { return knowledge.ReceivedTag(p, tag) }

// DidInternal holds when p performed an internal event tagged tag.
func DidInternal(p ProcID, tag string) Predicate { return knowledge.DidInternal(p, tag) }

// TokenAt holds when p holds the token in a token-passing system.
func TokenAt(p, initialHolder ProcID, tag string) Predicate {
	return knowledge.TokenAt(p, initialHolder, tag)
}

// NoMessagesInFlight holds when every sent message has been received —
// quiescence, the termination detector's target fact.
func NoMessagesInFlight() Predicate { return knowledge.NoMessagesInFlight() }

// AnySentTag holds when some process has sent a message tagged tag —
// the renaming-invariant closure of SentTag, usable on any quotient.
func AnySentTag(tag string) Predicate { return knowledge.AnySentTag(tag) }

// AnyReceivedTag holds when some process has received a message tagged
// tag.
func AnyReceivedTag(tag string) Predicate { return knowledge.AnyReceivedTag(tag) }

// AnyDidInternal holds when some process performed an internal event
// tagged tag.
func AnyDidInternal(tag string) Predicate { return knowledge.AnyDidInternal(tag) }

// Crashed holds when p has crash-stopped under a fault model (see
// UniverseSpec.Faults and internal/faults).
func Crashed(p ProcID) Predicate { return knowledge.Crashed(p) }

// AnyCrashed holds when some process has crash-stopped; the
// renaming-invariant closure of Crashed.
func AnyCrashed() Predicate { return knowledge.AnyCrashed() }

// Dropped holds when the channel dropped a message tagged tag under a
// fault model.
func Dropped(tag string) Predicate { return knowledge.Dropped(tag) }

// Duplicated holds when the channel duplicated a message tagged tag
// under a fault model.
func Duplicated(tag string) Predicate { return knowledge.Duplicated(tag) }

// --- Formula language (package logic) ---

// Vocabulary resolves atom names for the textual formula language.
type Vocabulary = logic.Vocabulary

// NewVocabulary builds a vocabulary from predicates.
func NewVocabulary(preds ...Predicate) Vocabulary { return logic.NewVocabulary(preds...) }

// ParseFormula parses the textual syntax, e.g. `K{p} !K{q} "sent(p,m)"`.
func ParseFormula(input string, vocab Vocabulary) (Formula, error) {
	return logic.Parse(input, vocab)
}

// PrintFormula renders a formula back into parseable syntax.
func PrintFormula(f Formula) string { return logic.Print(f) }

// --- Diagrams (package diagram) ---

type (
	// Diagram is a rendered isomorphism diagram (Figures 3-1…3-3).
	Diagram = diagram.Diagram
	// Vertex is a named computation in a diagram.
	Vertex = diagram.Vertex
)

// NewDiagram computes the isomorphism diagram of the named computations.
func NewDiagram(vertices []Vertex, procs ProcSet) *Diagram {
	return diagram.New(vertices, procs)
}
