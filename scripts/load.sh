#!/usr/bin/env sh
# Load-tests the hpld service and records the results as BENCH_6.json
# at the repo root: starts a daemon, waits for /v1/health, then drives
# concurrent mixed epistemic + temporal traffic against one warm
# universe with cmd/hplbench. Tunables (defaults match the recorded
# data point; CI uses a short DURATION for a smoke pass):
#
#   ./scripts/load.sh                       # 5s per arm, conc 16, batches 1,8
#   DURATION=1s CONC=8 ./scripts/load.sh
#
# ADDR picks the daemon's listen address, OUT the output file.
set -eu
cd "$(dirname "$0")/.."

ADDR="${ADDR:-127.0.0.1:8097}"
DURATION="${DURATION:-5s}"
CONC="${CONC:-16}"
BATCHES="${BATCHES:-1,8}"
OUT="${OUT:-BENCH_6.json}"

go build -o /tmp/hpld ./cmd/hpld
/tmp/hpld -addr "$ADDR" &
HPLD_PID=$!
trap 'kill "$HPLD_PID" 2>/dev/null || true' EXIT INT TERM

# Wait for the daemon to come up (health endpoint answers 200).
i=0
until curl -fsS "http://$ADDR/v1/health" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -ge 50 ]; then
		echo "load.sh: hpld did not come up on $ADDR" >&2
		exit 1
	fi
	sleep 0.1
done

go run ./cmd/hplbench -addr "http://$ADDR" \
	-duration "$DURATION" -conc "$CONC" -batches "$BATCHES" \
	-out "$OUT" \
	-note "scripts/load.sh against a live hpld on $ADDR ($(getconf _NPROCESSORS_ONLN 2>/dev/null || echo '?') CPUs); warm universe, mixed epistemic/temporal traffic"
echo "wrote $OUT" >&2
