#!/usr/bin/env sh
# Load-tests the hpld service and records the results at the repo root
# (BENCH_9_service.json by default — BENCH_9.json is owned by
# scripts/bench.sh): starts a daemon with a snapshot directory,
# measures cold-start time-to-first-answer twice — first against the
# empty directory (the first answer pays the enumeration) and then
# against the populated one after a daemon restart (the first answer is
# a disk load) — then drives concurrent mixed epistemic + temporal
# traffic against one warm universe with cmd/hplbench, and finally
# repeats the sustained arms against the symmetry quotient of the same
# spec (hplbench -symmetry, symmetric formula pool) into a second
# record, so the service rows carry the full-vs-quotient comparison.
# Each sustained arm is bracketed by /metrics scrapes, so the records
# carry server-side latency percentiles (serverLatencyMicros) next to
# the client-observed ones, and the daemon's final /metrics exposition
# is dumped next to OUT as <OUT>.metrics.txt — the raw counter state
# behind the summary numbers.
# Tunables (defaults match the recorded data point; CI uses a short
# DURATION for a smoke pass):
#
#   ./scripts/load.sh                       # 5s per arm, conc 16, batches 1,8
#   DURATION=1s CONC=8 ./scripts/load.sh
#
# ADDR picks the daemon's listen address, OUT the output file (the
# quotient arms land next to it with a .sym.json suffix), SNAPDIR the
# snapshot directory (default: a fresh temp dir, so the first cold arm
# is genuinely cold).
set -eu
cd "$(dirname "$0")/.."

ADDR="${ADDR:-127.0.0.1:8097}"
DURATION="${DURATION:-5s}"
CONC="${CONC:-16}"
BATCHES="${BATCHES:-1,8}"
OUT="${OUT:-BENCH_9_service.json}"
SYMOUT="${SYMOUT:-${OUT%.json}.sym.json}"
SNAPDIR="${SNAPDIR:-$(mktemp -d)}"

go build -o /tmp/hpld ./cmd/hpld
go build -o /tmp/hplbench ./cmd/hplbench

HPLD_PID=
stop_daemon() {
	[ -n "$HPLD_PID" ] || return 0
	kill "$HPLD_PID" 2>/dev/null || true
	wait "$HPLD_PID" 2>/dev/null || true
	HPLD_PID=
}
trap stop_daemon EXIT INT TERM

start_daemon() {
	/tmp/hpld -addr "$ADDR" -snapshot-dir "$SNAPDIR" &
	HPLD_PID=$!
	# Wait for the daemon to come up (health endpoint answers 200).
	i=0
	until curl -fsS "http://$ADDR/v1/health" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -ge 50 ]; then
			echo "load.sh: hpld did not come up on $ADDR" >&2
			exit 1
		fi
		sleep 0.1
	done
}

cold_millis() {
	/tmp/hplbench -addr "http://$ADDR" -cold |
		sed -n 's/.*"ttfaMillis": *\([0-9.]*\).*/\1/p'
}

# Cold arm 1: empty snapshot dir — the first answer pays the build
# (and persists the universe for the next arm).
start_daemon
COLD_BUILD=$(cold_millis)
stop_daemon

# Cold arm 2: daemon restart over the populated dir — the first answer
# is a snapshot load.
start_daemon
COLD_SNAP=$(cold_millis)
stop_daemon

echo "load.sh: cold start ${COLD_BUILD} ms without snapshots, ${COLD_SNAP} ms from $SNAPDIR" >&2

# Sustained-load arms against one warm universe, then the same arms
# against its symmetry quotient (one daemon holds both: they cache
# under different digests).
start_daemon
/tmp/hplbench -addr "http://$ADDR" \
	-duration "$DURATION" -conc "$CONC" -batches "$BATCHES" \
	-out "$OUT" \
	-note "scripts/load.sh against a live hpld on $ADDR ($(getconf _NPROCESSORS_ONLN 2>/dev/null || echo '?') CPUs); warm universe, mixed epistemic/temporal traffic; cold-start time-to-first-answer: ${COLD_BUILD} ms build vs ${COLD_SNAP} ms snapshot load after restart"
echo "wrote $OUT" >&2
/tmp/hplbench -addr "http://$ADDR" -symmetry \
	-duration "$DURATION" -conc "$CONC" -batches "$BATCHES" \
	-out "$SYMOUT" \
	-note "scripts/load.sh symmetry-quotient arm on $ADDR: same spec under the full process-interchange group (members stand for fullMembers computations), symmetric formula pool; compare against the full-universe record in $OUT"
echo "wrote $SYMOUT" >&2

# Dump the daemon's final metric state next to the records: the raw
# build-phase histograms, cache outcomes, and per-endpoint counters the
# summary percentiles were derived from.
METRICS_OUT="${METRICS_OUT:-${OUT%.json}.metrics.txt}"
curl -fsS "http://$ADDR/metrics" >"$METRICS_OUT"
echo "wrote $METRICS_OUT" >&2
