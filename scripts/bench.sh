#!/usr/bin/env sh
# Runs the enumeration benchmarks and records the results as
# BENCH_5.json at the repo root, so the perf trajectory has
# version-controlled data points. BENCHTIME tunes accuracy vs runtime
# (default 3x; CI uses 1x for a smoke pass):
#
#   ./scripts/bench.sh            # 3 iterations per benchmark
#   BENCHTIME=10x ./scripts/bench.sh
set -eu
cd "$(dirname "$0")/.."
go test -run 'XXX' -bench 'Enumerate' -benchmem -benchtime "${BENCHTIME:-3x}" . |
	tee /dev/stderr |
	go run ./cmd/benchjson -out BENCH_5.json \
		-note "PR-5 zero-copy enumeration core. PR-4 baseline on this 1-CPU Xeon 2.10GHz: BenchmarkEnumerateParallel/workers=1 178535056 ns/op, 84096104 B/op, 713239 allocs/op (16873 computations)."
echo "wrote BENCH_5.json" >&2
