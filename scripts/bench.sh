#!/usr/bin/env sh
# Runs the enumeration benchmarks and records the results as
# BENCH_5.json at the repo root, so the perf trajectory has
# version-controlled data points. BENCHTIME tunes accuracy vs runtime
# (default 3x; CI uses 1x for a smoke pass):
#
#   ./scripts/bench.sh            # 3 iterations per benchmark
#   BENCHTIME=10x ./scripts/bench.sh
#
# Multi-worker rows (EnumerateParallel/workers=2,4 and
# EnumerateLarge/workers=4) only say something about scaling when more
# than one CPU is actually available — on a 1-CPU box they all collapse
# to the sequential time and the "parallel speedup" they record is
# noise. So the script detects the CPU count: with one CPU it skips the
# multi-worker rows and says so in the recorded note; CI runs the full
# matrix in its bench-smoke job where more cores exist.
set -eu
cd "$(dirname "$0")/.."

CPUS=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
case "${GOMAXPROCS:-}" in
'' | *[!0-9]*) ;;
*) CPUS=$GOMAXPROCS ;;
esac

if [ "$CPUS" -le 1 ]; then
	BENCH='Enumerate/workers=1$'
	CPU_NOTE="1 CPU available: multi-worker rows skipped (workers>1 on one core measures scheduler overhead, not scaling); CI's bench-smoke job records the full worker matrix."
else
	BENCH='Enumerate'
	CPU_NOTE="$CPUS CPUs available: full worker matrix."
fi
echo "bench.sh: $CPU_NOTE" >&2

go test -run 'XXX' -bench "$BENCH" -benchmem -benchtime "${BENCHTIME:-3x}" . |
	tee /dev/stderr |
	go run ./cmd/benchjson -out BENCH_5.json \
		-note "PR-5 zero-copy enumeration core. $CPU_NOTE PR-4 baseline on this 1-CPU Xeon 2.10GHz: BenchmarkEnumerateParallel/workers=1 178535056 ns/op, 84096104 B/op, 713239 allocs/op (16873 computations)."
echo "wrote BENCH_5.json" >&2
