#!/usr/bin/env sh
# Runs the enumeration, symmetry-quotient, snapshot,
# incremental-extension, and fault-model benchmarks and records the
# results as BENCH_10.json at the repo root, so the perf trajectory has
# version-controlled data points. BENCHTIME tunes accuracy vs runtime
# (default 3x; CI uses 1x for a smoke pass):
#
#   ./scripts/bench.sh            # 3 iterations per benchmark
#   BENCHTIME=10x ./scripts/bench.sh
#
# Multi-worker rows (EnumerateParallel/workers=2,4 and
# EnumerateLarge/workers=4) only say something about scaling when more
# than one CPU is actually available — on a 1-CPU box they all collapse
# to the sequential time and the "parallel speedup" they record is
# noise. So the script detects the CPU count: with one CPU it skips the
# multi-worker rows and says so in the recorded note; CI runs the full
# matrix in its bench-smoke job where more cores exist. The symmetry,
# snapshot, and extension rows are single-threaded and always run —
# EnumerateSymmetry's full-vs-quotient arms record the orbit reduction
# (members vs full-members metrics) regardless of core count.
set -eu
cd "$(dirname "$0")/.."

CPUS=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
case "${GOMAXPROCS:-}" in
'' | *[!0-9]*) ;;
*) CPUS=$GOMAXPROCS ;;
esac

if [ "$CPUS" -le 1 ]; then
	BENCH='EnumerateSymmetry|EnumerateFaults|Enumerate.*/workers=1$|Snapshot|Extend'
	CPU_NOTE="1 CPU available: multi-worker rows skipped (workers>1 on one core measures scheduler overhead, not scaling); CI's bench-smoke job records the full worker matrix."
else
	BENCH='Enumerate|Snapshot|Extend'
	CPU_NOTE="$CPUS CPUs available: full worker matrix."
fi
echo "bench.sh: $CPU_NOTE" >&2

go test -run 'XXX' -bench "$BENCH" -benchmem -benchtime "${BENCHTIME:-3x}" . |
	tee /dev/stderr |
	go run ./cmd/benchjson -out BENCH_10.json \
		-note "PR-10 adversarial channels. $CPU_NOTE Headline comparison: EnumerateFaults/reliable vs /plain is the wrapper-identity gate — the reliable wrap must be free (same universe byte-for-byte, passthrough dispatch only), while the fault arms' cost tracks their universe growth (the computations metric: crash roughly 6x the members at this bound, crash+drop+dup roughly 30x), so the fault layer prices in members, not per-event overhead. EnumerateLargeTraced/workers=1 vs EnumerateLarge/workers=1 remains the <=2% instrumentation gate, EnumerateSymmetry/quotient vs /full the 6.00x orbit reduction, SnapshotLoadLarge/load vs /enumerate the cold-start race, ExtendLargeBound/extend-6to7 vs /from-scratch-7 the incremental extension."
echo "wrote BENCH_10.json" >&2
