#!/usr/bin/env sh
# Runs the enumeration, snapshot, and incremental-extension benchmarks
# and records the results as BENCH_7.json at the repo root, so the perf
# trajectory has version-controlled data points. BENCHTIME tunes
# accuracy vs runtime (default 3x; CI uses 1x for a smoke pass):
#
#   ./scripts/bench.sh            # 3 iterations per benchmark
#   BENCHTIME=10x ./scripts/bench.sh
#
# Multi-worker rows (EnumerateParallel/workers=2,4 and
# EnumerateLarge/workers=4) only say something about scaling when more
# than one CPU is actually available — on a 1-CPU box they all collapse
# to the sequential time and the "parallel speedup" they record is
# noise. So the script detects the CPU count: with one CPU it skips the
# multi-worker rows and says so in the recorded note; CI runs the full
# matrix in its bench-smoke job where more cores exist. The snapshot
# and extension rows are single-threaded and always run.
set -eu
cd "$(dirname "$0")/.."

CPUS=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
case "${GOMAXPROCS:-}" in
'' | *[!0-9]*) ;;
*) CPUS=$GOMAXPROCS ;;
esac

if [ "$CPUS" -le 1 ]; then
	BENCH='Enumerate/workers=1$|Snapshot|Extend'
	CPU_NOTE="1 CPU available: multi-worker rows skipped (workers>1 on one core measures scheduler overhead, not scaling); CI's bench-smoke job records the full worker matrix."
else
	BENCH='Enumerate|Snapshot|Extend'
	CPU_NOTE="$CPUS CPUs available: full worker matrix."
fi
echo "bench.sh: $CPU_NOTE" >&2

go test -run 'XXX' -bench "$BENCH" -benchmem -benchtime "${BENCHTIME:-3x}" . |
	tee /dev/stderr |
	go run ./cmd/benchjson -out BENCH_7.json \
		-note "PR-7 incremental extension + persistent snapshots. $CPU_NOTE Headline rows: SnapshotLoadLarge/load vs /enumerate is the cold-start race on the 107k-member universe — both arms end with transition graph and full partition resident, which is what -snapshot-dir buys a restart (expect >=10x); ExtendLargeBound/extend-6to7 vs /from-scratch-7 is the 621,673-member MaxEvents=7 universe materialized incrementally vs enumerated whole (one further Extend step reaches 3,131,593 members at MaxEvents=8 in ~14 s on this box). The lazy member-hash index this PR added also sped bare enumeration, so the PR-5 EnumerateLarge row is faster here than in BENCH_5.json."
echo "wrote BENCH_7.json" >&2
