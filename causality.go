package hpl

import (
	"io"

	"hpl/internal/causality"
	"hpl/internal/knowledge"
	"hpl/internal/stateiso"
	"hpl/internal/trace"
)

// This file extends the facade with the causality substrate (happened-
// before, clocks, process chains, consistent cuts), trace interchange
// formats, the everyone-knows ladder, and the §6 state-abstraction
// generalization.

// --- Causality ---

type (
	// CausalGraph is the happened-before structure of an event sequence.
	CausalGraph = causality.Graph
	// VectorClock maps processes to event counts.
	VectorClock = causality.VectorClock
	// Cut is a subset of a computation's event positions.
	Cut = causality.Cut
)

// NewCausalGraph builds the happened-before graph of an event sequence.
func NewCausalGraph(events []Event) *CausalGraph { return causality.NewGraph(events) }

// CausalGraphOf builds the graph of a full computation.
func CausalGraphOf(c *Computation) *CausalGraph { return causality.FromComputation(c) }

// VectorClocks computes the vector clock of every event in the sequence.
func VectorClocks(events []Event) []VectorClock { return causality.VectorClocks(events) }

// LamportClocks computes scalar Lamport clocks for every event.
func LamportClocks(events []Event) []int { return causality.LamportClocks(events) }

// HasChainIn reports whether the suffix (x, z) contains the process
// chain <sets[0] … sets[n-1]>.
func HasChainIn(x, z *Computation, sets []ProcSet) (bool, error) {
	return causality.HasChainIn(x, z, sets)
}

// ExtractCut implements the paper's Observation 2: the subsequence of a
// computation induced by a consistent cut is itself a computation.
func ExtractCut(c *Computation, cut Cut) (*Computation, error) {
	return causality.Extract(c, cut)
}

// --- Trace interchange ---

// ParseTraceText reads the compact line format ("send p q tag" /
// "recv q p" / "internal p tag"); see the trace package for the grammar.
func ParseTraceText(r io.Reader) (*Computation, error) { return trace.ParseText(r) }

// --- Everyone-knows ladder ---

// Everyone builds E b: every process in procs knows b.
func Everyone(procs ProcSet, f Formula) Formula { return knowledge.Everyone(procs, f) }

// EveryoneK builds E^k b.
func EveryoneK(procs ProcSet, f Formula, k int) Formula {
	return knowledge.EveryoneK(procs, f, k)
}

// EveryoneDepth returns, per universe member, the largest k ≤ maxK with
// E^k f holding there (-1 when even f fails).
func EveryoneDepth(e *Evaluator, f Formula, maxK int) []int {
	return knowledge.EveryoneDepth(e, f, maxK)
}

// --- State-based isomorphism (§6 generalization) ---

type (
	// Abstraction maps per-process projections to state keys.
	Abstraction = stateiso.Abstraction
	// StateEvaluator evaluates knowledge under state-based isomorphism.
	StateEvaluator = stateiso.Evaluator
)

// NewAbstraction builds a named state abstraction.
func NewAbstraction(name string, fn func(ProcID, []Event) string) Abstraction {
	return stateiso.NewAbstraction(name, fn)
}

// FullHistoryAbstraction is the identity abstraction (state = whole
// projection); it recovers computation-based isomorphism exactly.
func FullHistoryAbstraction() Abstraction { return stateiso.FullHistory() }

// CountersAbstraction remembers only per-kind event counts.
func CountersAbstraction() Abstraction { return stateiso.Counters() }

// NewStateEvaluator builds a state-based knowledge evaluator.
func NewStateEvaluator(u *Universe, abs Abstraction) *StateEvaluator {
	return stateiso.NewEvaluator(u, abs)
}
