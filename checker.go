package hpl

import (
	"sort"

	"hpl/internal/knowledge"
	"hpl/internal/logic"
	"hpl/internal/trace"
	"hpl/internal/universe"
)

// Checker is a model-checking session: a Universe, a memoizing
// Evaluator over it, and a Vocabulary for the textual formula language,
// bundled behind one entrypoint. It replaces the by-hand wiring of
// universe + evaluator + vocabulary that each tool and example used to
// repeat.
//
//	ck, err := hpl.CheckProtocol(p, hpl.WithMaxEvents(8), hpl.WithParallelism(4))
//	...
//	rep, err := ck.ParseAndCheck(`K{q} "sent(p,m)" -> "sent(p,m)"`)
//	fmt.Println(rep.Valid())
//
// A Checker is safe for concurrent use: the evaluator serializes
// queries internally and memoizes one truth vector per distinct
// subformula, so reusing one session across many queries — from one
// goroutine or many — is much cheaper than re-creating it. (Define is
// the exception: seed the vocabulary before sharing the session.)
type Checker struct {
	u     *Universe
	ev    *Evaluator
	vocab Vocabulary
}

// NewChecker builds a session over an already-enumerated universe. The
// predicates seed the vocabulary for Parse and ParseAndCheck; more can
// be added later with Define.
func NewChecker(u *Universe, preds ...Predicate) *Checker {
	return &Checker{
		u:     u,
		ev:    knowledge.NewEvaluator(u),
		vocab: logic.NewVocabulary(preds...),
	}
}

// CheckProtocol enumerates the protocol's universe under the given
// options (see WithMaxEvents, WithCap, WithParallelism, WithContext,
// WithProgress) and returns a session over it.
func CheckProtocol(p Protocol, opts ...EnumOption) (*Checker, error) {
	u, err := universe.EnumerateWith(p, opts...)
	if err != nil {
		return nil, err
	}
	return NewChecker(u), nil
}

// MustCheckProtocol is CheckProtocol for configurations known to
// succeed; it panics on error.
func MustCheckProtocol(p Protocol, opts ...EnumOption) *Checker {
	ck, err := CheckProtocol(p, opts...)
	if err != nil {
		panic(err)
	}
	return ck
}

// Define adds predicates to the session's vocabulary and returns the
// session, so construction chains:
//
//	ck := hpl.MustCheckProtocol(bus, hpl.WithMaxEvents(8)).
//		Define(bus.TokenAt("p"), bus.TokenAt("q"))
func (c *Checker) Define(preds ...Predicate) *Checker {
	for _, p := range preds {
		c.vocab[p.Name()] = p
	}
	return c
}

// Universe returns the session's quantification domain.
func (c *Checker) Universe() *Universe { return c.u }

// Evaluator returns the session's memoizing evaluator, for APIs that
// take one directly (EveryoneDepth, theorem harnesses).
func (c *Checker) Evaluator() *Evaluator { return c.ev }

// Atoms lists the vocabulary's atom names, sorted.
func (c *Checker) Atoms() []string {
	names := make([]string, 0, len(c.vocab))
	for name := range c.vocab {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Parse parses the textual formula syntax (e.g. `K{q} "sent(p,m)"`)
// against the session vocabulary.
func (c *Checker) Parse(input string) (Formula, error) {
	return logic.Parse(input, c.vocab)
}

// Holds evaluates f at computation x, which must be a member of the
// universe.
func (c *Checker) Holds(f Formula, x *Computation) (bool, error) {
	return c.ev.Holds(f, x)
}

// MustHolds is Holds for members; it panics when x is not a member.
func (c *Checker) MustHolds(f Formula, x *Computation) bool {
	return c.ev.MustHolds(f, x)
}

// HoldsAt evaluates f at the i-th member.
func (c *Checker) HoldsAt(f Formula, i int) bool { return c.ev.HoldsAt(f, i) }

// Valid reports whether f holds at every member of the universe.
func (c *Checker) Valid(f Formula) bool { return c.ev.Valid(f) }

// LocalTo reports whether f is local to P over the universe: P is sure
// of f at every member (§4.2).
func (c *Checker) LocalTo(f Formula, p ProcSet) bool { return c.ev.LocalTo(f, p) }

// ValidateSymmetric checks that f is evaluable over the session's
// universe: on a symmetry quotient (see WithSymmetry) every atom and
// every knowledge operator must be invariant under the quotient's
// group, or an *AsymmetryError describes the first offending part. On
// a full universe every formula validates. ParseAndCheck and
// ParseAndCheckTemporal run this automatically; Check and Valid do not
// (their signatures carry no error) and instead panic from the
// evaluation core on an asymmetric formula — validate first when the
// formula is not statically known to be symmetric.
func (c *Checker) ValidateSymmetric(f Formula) error {
	return c.ev.ValidateSymmetric(f)
}

// Report summarizes one formula checked over the whole universe.
type Report struct {
	// Formula is the checked formula.
	Formula Formula
	// Total is the universe size.
	Total int
	// Holding counts the members where the formula holds.
	Holding int
	// FirstFailure is the index of the first member where the formula
	// fails, or -1 when it is valid.
	FirstFailure int
	// FullTotal and FullHolding are Total and Holding re-expressed over
	// the full (unquotiented) universe: on a symmetry quotient each
	// member is weighted by its orbit size, so the counts compare
	// directly with a full-universe run; on a full universe they simply
	// repeat Total and Holding.
	FullTotal   int64
	FullHolding int64
}

// Valid reports whether the formula held at every member.
func (r Report) Valid() bool { return r.FirstFailure < 0 }

// Check evaluates f at every member and summarizes the result. The
// evaluation is set-at-a-time: one truth vector over the whole
// universe, counted and scanned word-parallel. On a symmetry quotient
// f must be invariant under the quotient's group (the evaluation core
// panics with an *AsymmetryError otherwise — see ValidateSymmetric).
func (c *Checker) Check(f Formula) Report {
	holding, firstFailure := c.ev.Summary(f)
	rep := Report{Formula: f, Total: c.u.Len(), Holding: holding, FirstFailure: firstFailure}
	rep.FullTotal = c.u.FullSize()
	if c.u.IsQuotient() {
		rep.FullHolding = c.ev.CountWeighted(f)
	} else {
		rep.FullHolding = int64(holding)
	}
	return rep
}

// TruthVector returns f's truth value at every member, in member order.
func (c *Checker) TruthVector(f Formula) []bool { return c.ev.TruthVector(f) }

// TemporalReport extends Report with the model-checking verdict at the
// initial state: a temporal property of the protocol ("q eventually
// learns b", "knowledge of b is stable") is asked at the null
// computation, where every behaviour of the system starts, while
// validity quantifies over all members as usual.
type TemporalReport struct {
	Report
	// Init is the member index of the null computation, or -1 when the
	// universe does not contain it (only possible for hand-built
	// universes; enumerated ones always start at null).
	Init int
	// AtInit reports whether the formula holds at the null computation;
	// false when Init is -1.
	AtInit bool
}

// CheckTemporal evaluates f — which may mix temporal operators
// (EX/EF/AG/EU/Once/…) with epistemic ones — over the universe's
// prefix-extension transition graph and reports both the verdict at the
// initial (null) computation and the usual whole-universe summary. On
// the prefix-closed universes produced by enumeration, "AG f holds at
// init" and "f is valid" coincide; the temporal phrasing additionally
// supports reachability (EF), inevitability (AF/AU) and past-looking
// (Once/Hist) queries that validity alone cannot express.
func (c *Checker) CheckTemporal(f Formula) TemporalReport {
	rep := TemporalReport{Report: c.Check(f), Init: c.u.IndexOf(trace.Empty())}
	if rep.Init >= 0 {
		rep.AtInit = c.ev.HoldsAt(f, rep.Init)
	}
	return rep
}

// ParseAndCheckTemporal parses the textual formula against the session
// vocabulary and checks it as a temporal property (see CheckTemporal).
func (c *Checker) ParseAndCheckTemporal(input string) (TemporalReport, error) {
	f, err := c.Parse(input)
	if err != nil {
		return TemporalReport{}, err
	}
	if err := c.ev.ValidateSymmetric(f); err != nil {
		return TemporalReport{}, err
	}
	return c.CheckTemporal(f), nil
}

// ParseAndCheck parses the textual formula against the session
// vocabulary and checks it over the whole universe.
func (c *Checker) ParseAndCheck(input string) (Report, error) {
	f, err := c.Parse(input)
	if err != nil {
		return Report{}, err
	}
	if err := c.ev.ValidateSymmetric(f); err != nil {
		return Report{}, err
	}
	return c.Check(f), nil
}
