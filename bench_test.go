// Benchmarks: one per reproduced figure/table (see the experiment index
// in DESIGN.md), plus ablation benches for the design choices called out
// there. Run with:
//
//	go test -bench=. -benchmem
package hpl_test

import (
	"bytes"
	"fmt"
	"testing"

	"hpl/internal/causality"
	"hpl/internal/experiments"
	"hpl/internal/failure"
	"hpl/internal/faults"
	"hpl/internal/knowledge"
	"hpl/internal/obs"
	"hpl/internal/protocols/diffusing"
	"hpl/internal/protocols/tokenbus"
	"hpl/internal/termination"
	"hpl/internal/trace"
	"hpl/internal/tracking"
	"hpl/internal/universe"
)

func benchTable(b *testing.B, f func() (experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := f(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per figure / experiment row ---

func BenchmarkFig31IsomorphismDiagram(b *testing.B) { benchTable(b, experiments.Fig31) }

func BenchmarkFig32FusionLemma(b *testing.B) { benchTable(b, experiments.Fig32) }

func BenchmarkFig33FusionTheorem(b *testing.B) { benchTable(b, experiments.Fig33) }

func BenchmarkIsoProperties(b *testing.B) { benchTable(b, experiments.IsoProperties) }

func BenchmarkTheorem1Dichotomy(b *testing.B) { benchTable(b, experiments.Theorem1) }

func BenchmarkTheorem3EventSemantics(b *testing.B) { benchTable(b, experiments.Theorem3) }

func BenchmarkKnowledgeAxioms(b *testing.B) { benchTable(b, experiments.KnowledgeAxioms) }

func BenchmarkLocalPredicateFacts(b *testing.B) { benchTable(b, experiments.LocalPredicateFacts) }

func BenchmarkCommonKnowledge(b *testing.B) { benchTable(b, experiments.CommonKnowledge) }

func BenchmarkTheorem4KnowledgePath(b *testing.B) { benchTable(b, experiments.Theorem4Path) }

func BenchmarkTheorem5KnowledgeGain(b *testing.B) { benchTable(b, experiments.Theorem5Gain) }

func BenchmarkTheorem6KnowledgeLoss(b *testing.B) { benchTable(b, experiments.Theorem6Loss) }

func BenchmarkTokenBusKnowledge(b *testing.B) { benchTable(b, experiments.TokenBus) }

func BenchmarkTrackingUnsureWindow(b *testing.B) { benchTable(b, experiments.Tracking) }

func BenchmarkFailureDetection(b *testing.B) { benchTable(b, experiments.FailureDetection) }

func BenchmarkTerminationOverhead(b *testing.B) { benchTable(b, experiments.TerminationBound) }

func BenchmarkStateAbstraction(b *testing.B) { benchTable(b, experiments.StateAbstraction) }

func BenchmarkCommitKnowledge(b *testing.B) { benchTable(b, experiments.CommitKnowledge) }

// --- Component benchmarks ---

func BenchmarkUniverseEnumeration(b *testing.B) {
	cfg := universe.FreeConfig{Procs: []trace.ProcID{"p", "q"}, MaxSends: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := universe.EnumerateWith(universe.NewFree(cfg), universe.WithMaxEvents(5)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnumerateParallel tracks the worker-pool engine's scaling on
// a mid-size universe (≥10k computations): the same enumeration on 1, 2,
// and 4 workers. The engine guarantees identical results at every width;
// this benchmark tracks what the width buys (expect ≈1× on a single
// core, ≥1.5× at 4 workers on multi-core hardware).
func BenchmarkEnumerateParallel(b *testing.B) {
	cfg := universe.FreeConfig{Procs: []trace.ProcID{"p", "q", "r"}, MaxSends: 2}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var size int
			for i := 0; i < b.N; i++ {
				u, err := universe.EnumerateWith(universe.NewFree(cfg),
					universe.WithMaxEvents(5),
					universe.WithParallelism(workers))
				if err != nil {
					b.Fatal(err)
				}
				size = u.Len()
			}
			if size < 10000 {
				b.Fatalf("universe too small for a meaningful scaling benchmark: %d", size)
			}
			b.ReportMetric(float64(size), "computations")
		})
	}
}

// BenchmarkEnumerateLarge tracks the zero-copy enumeration core at the
// bound the structural-sharing rewrite opened up: a three-process free
// system at MaxEvents=6 (≥100k computations), with allocations
// reported. The per-member allocation count is the headline number —
// the engine shares each child's history with its parent, interns
// state vectors, and dedups by 128-bit hash, so the old
// copy-everything cost model (events slice + state map + string key
// per member) no longer applies.
func BenchmarkEnumerateLarge(b *testing.B) {
	cfg := universe.FreeConfig{Procs: []trace.ProcID{"p", "q", "r"}, MaxSends: 2}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var size int
			for i := 0; i < b.N; i++ {
				u, err := universe.EnumerateWith(universe.NewFree(cfg),
					universe.WithMaxEvents(6),
					universe.WithParallelism(workers))
				if err != nil {
					b.Fatal(err)
				}
				size = u.Len()
			}
			if size < 100000 {
				b.Fatalf("universe too small for the large-bound benchmark: %d", size)
			}
			b.ReportMetric(float64(size), "computations")
		})
	}
}

// BenchmarkEnumerateFaults prices the adversarial channel layer on the
// parallel-scaling universe: "plain" is the unwrapped system, "reliable"
// the identity wrap (its cost over plain is the wrapper's passthrough
// overhead — expect noise), and the fault arms enumerate the strictly
// larger fault-extended universes, so their cost is dominated by the
// extra members (reported per run), not by the wrapper.
func BenchmarkEnumerateFaults(b *testing.B) {
	cfg := universe.FreeConfig{Procs: []trace.ProcID{"p", "q", "r"}, MaxSends: 1}
	arms := []struct {
		name string
		wrap func(universe.Protocol) universe.Protocol
	}{
		{"plain", func(p universe.Protocol) universe.Protocol { return p }},
		{"reliable", func(p universe.Protocol) universe.Protocol { return faults.Wrap(p, faults.Model{}) }},
		{"crash", func(p universe.Protocol) universe.Protocol {
			return faults.Wrap(p, faults.Model{CrashAll: true})
		}},
		{"crash+drop+dup", func(p universe.Protocol) universe.Protocol {
			return faults.Wrap(p, faults.Model{CrashAll: true, Drops: 1, Dups: 1})
		}},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			b.ReportAllocs()
			var size int
			for i := 0; i < b.N; i++ {
				u, err := universe.EnumerateWith(arm.wrap(universe.NewFree(cfg)),
					universe.WithMaxEvents(5))
				if err != nil {
					b.Fatal(err)
				}
				size = u.Len()
			}
			b.ReportMetric(float64(size), "computations")
		})
	}
}

// BenchmarkEnumerateLargeTraced is the workers=1 arm of
// BenchmarkEnumerateLarge with a build trace attached and per-phase
// histograms recording — the observability overhead gate. Tracing is
// meant to be cheap enough to leave on in production (span timestamps
// only at phase boundaries, per-node costs batched into worker-local
// counters), and the recorded BENCH rows hold it to that: this row must
// stay within ~2% of the untraced workers=1 row.
func BenchmarkEnumerateLargeTraced(b *testing.B) {
	cfg := universe.FreeConfig{Procs: []trace.ProcID{"p", "q", "r"}, MaxSends: 2}
	b.Run("workers=1", func(b *testing.B) {
		b.ReportAllocs()
		var size int
		for i := 0; i < b.N; i++ {
			u, err := universe.EnumerateWith(universe.NewFree(cfg),
				universe.WithMaxEvents(6),
				universe.WithParallelism(1),
				universe.WithTrace(obs.NewTrace()))
			if err != nil {
				b.Fatal(err)
			}
			size = u.Len()
		}
		if size < 100000 {
			b.Fatalf("universe too small for the large-bound benchmark: %d", size)
		}
		b.ReportMetric(float64(size), "computations")
	})
}

// BenchmarkEnumerateSymmetry is the orbit-reduction ablation: the same
// three-process free system enumerated in full and as a symmetry
// quotient under the full interchange group, at the 16.9k (MaxEvents=5)
// and 107k (MaxEvents=6) bounds. Each row reports both the member count
// it materialized and the full-universe count it stands for
// (full-members), so the recorded BENCH_8.json rows carry the reduction
// ratio — 107,593 → 17,933 (6.00×) at MaxEvents=6 — next to the time
// saved. The quotient arms pay per-child canonicalization against the
// parent's stabilizer, so the speedup is below the member ratio; the
// win compounds through every downstream pass (partitions, truth
// vectors, temporal sweeps) that now touches one member per orbit.
func BenchmarkEnumerateSymmetry(b *testing.B) {
	cfg := universe.FreeConfig{Procs: []trace.ProcID{"p", "q", "r"}, MaxSends: 2}
	grp := universe.InferSymmetry(universe.NewFree(cfg))
	if grp.Trivial() {
		b.Fatal("free protocol did not declare its interchange group")
	}
	for _, me := range []int{5, 6} {
		b.Run(fmt.Sprintf("full/events=%d", me), func(b *testing.B) {
			b.ReportAllocs()
			var size int
			for i := 0; i < b.N; i++ {
				u, err := universe.EnumerateWith(universe.NewFree(cfg), universe.WithMaxEvents(me))
				if err != nil {
					b.Fatal(err)
				}
				size = u.Len()
			}
			b.ReportMetric(float64(size), "computations")
			b.ReportMetric(float64(size), "full-members")
		})
		b.Run(fmt.Sprintf("quotient/events=%d", me), func(b *testing.B) {
			b.ReportAllocs()
			var u *universe.Universe
			for i := 0; i < b.N; i++ {
				var err error
				u, err = universe.EnumerateWith(universe.NewFree(cfg),
					universe.WithMaxEvents(me),
					universe.WithSymmetry(grp))
				if err != nil {
					b.Fatal(err)
				}
			}
			if !u.IsQuotient() || u.FullSize() <= int64(u.Len()) {
				b.Fatalf("quotient did not reduce: %d members for %d full", u.Len(), u.FullSize())
			}
			b.ReportMetric(float64(u.Len()), "computations")
			b.ReportMetric(float64(u.FullSize()), "full-members")
		})
	}
}

// snapshotBenchUniverse enumerates the 107k-member MaxEvents=6 universe
// the snapshot and extension benchmarks exercise — the same universe as
// BenchmarkEnumerateLarge, so its workers=1 row is the re-enumeration
// baseline the snapshot load is measured against.
func snapshotBenchUniverse(b *testing.B) *universe.Universe {
	b.Helper()
	u, err := universe.EnumerateWith(universe.NewFree(universe.FreeConfig{
		Procs:    []trace.ProcID{"p", "q", "r"},
		MaxSends: 2,
	}), universe.WithMaxEvents(6))
	if err != nil {
		b.Fatal(err)
	}
	if u.Len() < 100000 {
		b.Fatalf("universe too small for the snapshot benchmarks: %d", u.Len())
	}
	return u
}

// BenchmarkSnapshotWriteLarge measures encoding the 107k-member
// universe (with its transition graph and a partition table resident)
// to the versioned binary snapshot format.
func BenchmarkSnapshotWriteLarge(b *testing.B) {
	u := snapshotBenchUniverse(b)
	u.Transitions()
	u.Partition(u.All())
	var buf bytes.Buffer
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := universe.WriteSnapshot(&buf, u, "bench"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(u.Len()), "computations")
	b.ReportMetric(float64(buf.Len()), "snapshot-bytes")
}

// BenchmarkSnapshotLoadLarge measures the cold-start race on the
// 107k-member universe: both arms end in the same place — a universe
// with its transition graph and full-set partition table resident,
// ready to answer the standard query mix — but "enumerate" gets there
// the way a restart without snapshots does (re-run the protocol, build
// the tables), while "load" decodes the snapshot, where the tables come
// back as flat arrays and the projection-key index rebuilds lazily only
// if a non-member lookup ever needs it. The gap between the arms is
// what -snapshot-dir buys per restart (expect ≥10×).
func BenchmarkSnapshotLoadLarge(b *testing.B) {
	u := snapshotBenchUniverse(b)
	u.Transitions()
	u.Partition(u.All())
	var buf bytes.Buffer
	if err := universe.WriteSnapshot(&buf, u, "bench"); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	cfg := universe.FreeConfig{Procs: []trace.ProcID{"p", "q", "r"}, MaxSends: 2}
	b.Run("enumerate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, err := universe.EnumerateWith(universe.NewFree(cfg), universe.WithMaxEvents(6))
			if err != nil {
				b.Fatal(err)
			}
			got.Transitions()
			got.Partition(got.All())
		}
		b.ReportMetric(float64(u.Len()), "computations")
	})
	b.Run("load", func(b *testing.B) {
		b.ReportAllocs()
		var size int
		for i := 0; i < b.N; i++ {
			got, _, err := universe.ReadSnapshot(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			size = got.Len()
		}
		if size != u.Len() {
			b.Fatalf("loaded %d members, want %d", size, u.Len())
		}
		b.ReportMetric(float64(size), "computations")
	})
}

// BenchmarkExtendLargeBound pushes the bound into the 621k-member
// MaxEvents=7 territory both ways: enumerating from scratch and
// extending the cached MaxEvents=6 universe in place — the frontier
// below the old bound is never re-enumerated, so the extension arm is
// the marginal cost of the new bound alone.
func BenchmarkExtendLargeBound(b *testing.B) {
	cfg := universe.FreeConfig{Procs: []trace.ProcID{"p", "q", "r"}, MaxSends: 2}
	b.Run("from-scratch-7", func(b *testing.B) {
		b.ReportAllocs()
		var size int
		for i := 0; i < b.N; i++ {
			u, err := universe.EnumerateWith(universe.NewFree(cfg), universe.WithMaxEvents(7))
			if err != nil {
				b.Fatal(err)
			}
			size = u.Len()
		}
		b.ReportMetric(float64(size), "computations")
	})
	b.Run("extend-6to7", func(b *testing.B) {
		base := snapshotBenchUniverse(b)
		b.ResetTimer()
		b.ReportAllocs()
		var size int
		for i := 0; i < b.N; i++ {
			u, err := universe.Extend(base, universe.WithMaxEvents(7))
			if err != nil {
				b.Fatal(err)
			}
			size = u.Len()
		}
		if size < 600000 {
			b.Fatalf("extended universe too small: %d", size)
		}
		b.ReportMetric(float64(size), "computations")
	})
}

func BenchmarkVectorClocks(b *testing.B) {
	res, err := diffusing.RunDS(diffusing.Workload{
		Topo: diffusing.Complete(6), TotalMessages: 100, FanOut: 2, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	events := res.Comp.Events()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		causality.VectorClocks(events)
	}
}

func BenchmarkHappenedBeforeGraph(b *testing.B) {
	res, err := diffusing.RunDS(diffusing.Workload{
		Topo: diffusing.Complete(6), TotalMessages: 100, FanOut: 2, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	events := res.Comp.Events()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		causality.NewGraph(events)
	}
}

func BenchmarkSimulatorThroughput(b *testing.B) {
	bus := tokenbus.MustNew("p", "q", "r", "s", "t")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bus.Simulate(int64(i), 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDijkstraScholtenRun(b *testing.B) {
	w := diffusing.Workload{Topo: diffusing.Complete(8), TotalMessages: 200, FanOut: 2, Seed: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := diffusing.RunDS(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCreditRun(b *testing.B) {
	w := diffusing.Workload{Topo: diffusing.Complete(8), TotalMessages: 200, FanOut: 2, Seed: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := diffusing.RunCredit(w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForeverUnsureCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := failure.CheckForeverUnsure(2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrackingModelCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tracking.CheckUnsureDuringChange(2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuietCounterexampleSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := termination.FindQuietCounterexample(6, 30, 2, 60); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (design choices called out in DESIGN.md §5) ---

func ablationUniverse(b *testing.B) *universe.Universe {
	b.Helper()
	u, err := universe.EnumerateWith(universe.NewFree(universe.FreeConfig{
		Procs:    []trace.ProcID{"p", "q"},
		MaxSends: 1,
	}), universe.WithMaxEvents(5))
	if err != nil {
		b.Fatal(err)
	}
	return u
}

// BenchmarkAblationProjectionIndex measures class lookup via the
// projection-key index (warm) against pairwise scanning.
func BenchmarkAblationProjectionIndex(b *testing.B) {
	u := ablationUniverse(b)
	p := trace.Singleton("q")
	u.Class(u.At(0), p) // warm the index
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < u.Len(); j++ {
				u.Class(u.At(j), p)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < u.Len(); j++ {
				u.ClassScan(u.At(j), p)
			}
		}
	})
}

// BenchmarkAblationChainDetection compares the linear-pass chain DP
// against quadratic brute force over the happened-before closure.
func BenchmarkAblationChainDetection(b *testing.B) {
	res, err := diffusing.RunDS(diffusing.Workload{
		Topo: diffusing.Complete(6), TotalMessages: 60, FanOut: 2, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	events := res.Comp.Events()
	sets := []trace.ProcSet{trace.Singleton("n01"), trace.Singleton("n00")}
	b.Run("dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := causality.NewGraph(events)
			g.HasChain(sets)
		}
	})
	b.Run("bruteforce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := causality.NewGraph(events)
			found := false
			for x := 0; x < g.Len() && !found; x++ {
				if g.Event(x).Proc != "n01" {
					continue
				}
				for y := 0; y < g.Len() && !found; y++ {
					if g.Event(y).Proc == "n00" && g.HappenedBefore(x, y) {
						found = true
					}
				}
			}
		}
	})
}

// BenchmarkAblationKnowledgeMemo compares the memoizing evaluator
// against naive recursion on a nested-knowledge formula.
func BenchmarkAblationKnowledgeMemo(b *testing.B) {
	u := ablationUniverse(b)
	f := knowledge.Knows(trace.Singleton("p"),
		knowledge.Knows(trace.Singleton("q"),
			knowledge.NewAtom(knowledge.SentTag("p", "m"))))
	b.Run("memoized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := knowledge.NewEvaluator(u)
			for j := 0; j < u.Len(); j++ {
				e.HoldsAt(f, j)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < u.Len(); j++ {
				knowledge.EvalNaive(u, f, j)
			}
		}
	})
}

// ablationUniverseLarge enumerates a ≥10k-computation universe (16.9k
// members on three processes) for the vectorized-engine ablations.
func ablationUniverseLarge(b *testing.B) *universe.Universe {
	b.Helper()
	u, err := universe.EnumerateWith(universe.NewFree(universe.FreeConfig{
		Procs:    []trace.ProcID{"p", "q", "r"},
		MaxSends: 2,
	}), universe.WithMaxEvents(5))
	if err != nil {
		b.Fatal(err)
	}
	if u.Len() < 10000 {
		b.Fatalf("universe too small for the vectorized-eval ablation: %d", u.Len())
	}
	return u
}

// BenchmarkAblationVectorizedEval compares the vectorized set-at-a-time
// engine against the per-member memoized evaluator it replaced, on a
// nested-knowledge formula over the whole ≥10k-member universe. The
// per-member path pays Σ|class|² work inside each Knows; the vectorized
// path pays one all-reduce per class, so expect well over 2×.
func BenchmarkAblationVectorizedEval(b *testing.B) {
	u := ablationUniverseLarge(b)
	u.Partition(trace.Singleton("p")) // warm shared tables: measure evaluation, not indexing
	u.Partition(trace.Singleton("q"))
	f := knowledge.Knows(trace.Singleton("p"),
		knowledge.Knows(trace.Singleton("q"),
			knowledge.NewAtom(knowledge.SentTag("p", "m"))))
	b.Run("vectorized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := knowledge.NewEvaluator(u)
			for j := 0; j < u.Len(); j++ {
				e.HoldsAt(f, j)
			}
		}
	})
	b.Run("member-memoized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := knowledge.NewMemberEvaluator(u)
			for j := 0; j < u.Len(); j++ {
				e.HoldsAt(f, j)
			}
		}
	})
}

// BenchmarkAblationPartitionTable compares the dense interned partition
// table against the string-keyed projection map it replaced: build the
// class structure for {q}, then resolve every member's class.
func BenchmarkAblationPartitionTable(b *testing.B) {
	u := ablationUniverseLarge(b)
	p := trace.Singleton("q")
	b.Run("partition", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pt := universe.NewPartition(u, p)
			total := 0
			for j := 0; j < u.Len(); j++ {
				total += len(pt.MembersOf(pt.ClassOf(j)))
			}
			if total < u.Len() {
				b.Fatal("partition lost members")
			}
		}
	})
	b.Run("stringmap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			idx := make(map[string][]int)
			for j := 0; j < u.Len(); j++ {
				pk := u.At(j).ProjectionKey(p)
				idx[pk] = append(idx[pk], j)
			}
			total := 0
			for j := 0; j < u.Len(); j++ {
				total += len(idx[u.At(j).ProjectionKey(p)])
			}
			if total < u.Len() {
				b.Fatal("index lost members")
			}
		}
	})
}

// BenchmarkTransitionGraph measures building the prefix-extension
// transition graph (CSR arenas + topological order) on the ≥10k-member
// universe — the one-time cost the temporal layer pays per universe.
func BenchmarkTransitionGraph(b *testing.B) {
	u := ablationUniverseLarge(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := universe.NewTransitions(u)
		if t.NumEdges() != u.Len()-1 {
			b.Fatalf("graph lost edges: %d", t.NumEdges())
		}
	}
}

// BenchmarkAblationTemporalEval compares the single-sweep vectorized
// temporal fixpoints against the naive per-member graph recursion on
// the knowledge-gain formula AG(K{q} b → Once r) over the whole
// ≥10k-member universe. The naive arm re-walks each member's extension
// subtree (and recomputes the epistemic subformulas per member), so
// expect orders of magnitude.
func BenchmarkAblationTemporalEval(b *testing.B) {
	u := ablationUniverseLarge(b)
	u.Partition(trace.Singleton("q")) // warm shared tables, as in the epistemic ablation
	u.Transitions()
	f := knowledge.AG(knowledge.Implies(
		knowledge.Knows(trace.Singleton("q"), knowledge.NewAtom(knowledge.SentTag("p", "m"))),
		knowledge.Once(knowledge.NewAtom(knowledge.ReceivedTag("q", "m")))))
	b.Run("vectorized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := knowledge.NewEvaluator(u)
			holding, _ := e.Summary(f)
			if holding == 0 {
				b.Fatal("gain formula cannot hold nowhere")
			}
		}
	})
	b.Run("member-memoized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := knowledge.NewMemberEvaluator(u)
			holding := 0
			for j := 0; j < u.Len(); j++ {
				if e.HoldsAt(f, j) {
					holding++
				}
			}
			if holding == 0 {
				b.Fatal("gain formula cannot hold nowhere")
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		// One naive full-universe pass is far slower than the other
		// arms; keep it meaningful but bounded by sampling every 16th
		// member.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < u.Len(); j += 16 {
				knowledge.EvalNaive(u, f, j)
			}
		}
	})
}

func BenchmarkKnowledgeLadder(b *testing.B) { benchTable(b, experiments.KnowledgeLadder) }

func BenchmarkLargeBoundTheorems(b *testing.B) { benchTable(b, experiments.LargeBound) }

func BenchmarkGeneralizations(b *testing.B) { benchTable(b, experiments.Generalizations) }
