package hpl_test

import (
	"encoding/json"
	"errors"
	"testing"

	"hpl"
)

// TestSpecDigestCollides pins the cache-key semantics of satellite-grade
// importance for the service: semantically identical option sets must
// produce the same digest, so reordered processes, duplicate tags, and
// defaults spelled out or omitted all land on the same hot universe.
func TestSpecDigestCollides(t *testing.T) {
	base := hpl.UniverseSpec{
		Protocol: "free",
		Procs:    []hpl.ProcID{"p", "q", "r"},
		MaxSends: 2, MaxEvents: 6,
	}
	same := []hpl.UniverseSpec{
		{Procs: []hpl.ProcID{"r", "q", "p"}, MaxSends: 2, MaxEvents: 6}, // reordered procs, default protocol
		{Protocol: "FREE", Procs: []hpl.ProcID{"p", "q", "r", "q"}, MaxSends: 2, MaxEvents: 6},
		{Protocol: " free ", Procs: []hpl.ProcID{"p", "q", "r"}, MaxSends: 2, MaxEvents: 6,
			SendTags: []string{"m", "m"}, InternalTags: []string{"i"}}, // defaults explicit
		{Procs: []hpl.ProcID{"p", "q", "r"}, MaxSends: 2, MaxEvents: 6, MaxInternal: -3, Cap: -1}, // clamped
		{Procs: []hpl.ProcID{"p", "q", "r"}, MaxSends: 2, MaxEvents: 6, Symmetry: "NONE "},        // pre-symmetry digests stay stable
		{Procs: []hpl.ProcID{"p", "q", "r"}, MaxSends: 2, MaxEvents: 6, Faults: " None "},         // pre-faults digests stay stable
	}
	want := base.Digest()
	for i, s := range same {
		if got := s.Digest(); got != want {
			t.Errorf("spec %d: digest %s != base %s, but specs are semantically identical\n%+v", i, got, want, s)
		}
	}
}

// TestSpecDigestSeparates checks that every semantic difference changes
// the digest.
func TestSpecDigestSeparates(t *testing.T) {
	base := hpl.UniverseSpec{Procs: []hpl.ProcID{"p", "q"}, MaxSends: 1, MaxEvents: 4}
	diff := map[string]hpl.UniverseSpec{
		"procs":        {Procs: []hpl.ProcID{"p", "q", "r"}, MaxSends: 1, MaxEvents: 4},
		"maxSends":     {Procs: []hpl.ProcID{"p", "q"}, MaxSends: 2, MaxEvents: 4},
		"maxInternal":  {Procs: []hpl.ProcID{"p", "q"}, MaxSends: 1, MaxInternal: 1, MaxEvents: 4},
		"maxEvents":    {Procs: []hpl.ProcID{"p", "q"}, MaxSends: 1, MaxEvents: 5},
		"cap":          {Procs: []hpl.ProcID{"p", "q"}, MaxSends: 1, MaxEvents: 4, Cap: 1000},
		"sendTags":     {Procs: []hpl.ProcID{"p", "q"}, MaxSends: 1, MaxEvents: 4, SendTags: []string{"a", "b"}},
		"internalTags": {Procs: []hpl.ProcID{"p", "q"}, MaxSends: 1, MaxEvents: 4, InternalTags: []string{"x"}},
		"symmetry":     {Procs: []hpl.ProcID{"p", "q"}, MaxSends: 1, MaxEvents: 4, Symmetry: "full"},
		"faults":       {Procs: []hpl.ProcID{"p", "q"}, MaxSends: 1, MaxEvents: 4, Faults: "crash"},
		"faultsDrop":   {Procs: []hpl.ProcID{"p", "q"}, MaxSends: 1, MaxEvents: 4, Faults: "drop:1"},
	}
	seen := map[string]string{base.Digest(): "base"}
	for name, s := range diff {
		d := s.Digest()
		if prev, dup := seen[d]; dup {
			t.Errorf("specs %q and %q share digest %s but differ semantically", name, prev, d)
		}
		seen[d] = name
	}
	// Tag *sets* that differ only in ambiguous concatenation must still
	// separate (the encoding is length-prefixed).
	a := hpl.UniverseSpec{Procs: []hpl.ProcID{"p", "q"}, MaxSends: 1, MaxEvents: 4, SendTags: []string{"ab", "c"}}
	b := hpl.UniverseSpec{Procs: []hpl.ProcID{"p", "q"}, MaxSends: 1, MaxEvents: 4, SendTags: []string{"a", "bc"}}
	if a.Digest() == b.Digest() {
		t.Errorf("length-prefixing failed: {ab,c} and {a,bc} collide")
	}
}

// TestSpecDigestPinned pins one golden digest so accidental changes to
// the canonical encoding (which would strand every persisted cache key)
// show up as a test failure rather than silent cache misses.
func TestSpecDigestPinned(t *testing.T) {
	s := hpl.UniverseSpec{Procs: []hpl.ProcID{"p", "q"}, MaxSends: 1, MaxEvents: 4}
	const want = "0b140f5ecc2b6625397204a293de4046aa2c4d94e9b45235cc4755c778f6508a"
	if got := s.Digest(); got != want {
		t.Errorf("canonical digest changed: got %s want %s\n(if intentional, update the pin — cached keys will all miss once)", got, want)
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (hpl.UniverseSpec{Procs: []hpl.ProcID{"p"}}).Validate(); err != nil {
		t.Errorf("minimal spec invalid: %v", err)
	}
	if err := (hpl.UniverseSpec{}).Validate(); err == nil {
		t.Errorf("spec without processes validated")
	}
	if err := (hpl.UniverseSpec{Protocol: "chord", Procs: []hpl.ProcID{"p"}}).Validate(); err == nil {
		t.Errorf("unknown protocol validated")
	}
	if err := (hpl.UniverseSpec{Procs: []hpl.ProcID{"p", "q"}, Symmetry: "Full "}).Validate(); err != nil {
		t.Errorf("full symmetry invalid: %v", err)
	}
	if err := (hpl.UniverseSpec{Procs: []hpl.ProcID{"p"}, Symmetry: "orbit"}).Validate(); err == nil {
		t.Errorf("unknown symmetry validated")
	}
	nine := hpl.UniverseSpec{Symmetry: "full"}
	for _, p := range []hpl.ProcID{"a", "b", "c", "d", "e", "f", "g", "h", "i"} {
		nine.Procs = append(nine.Procs, p)
	}
	if err := nine.Validate(); err == nil {
		t.Errorf("full symmetry over nine processes validated (group order exceeds 8!)")
	}
}

// TestCheckSpecSymmetry runs the spec-to-session path with symmetry
// reduction: the quotient session must be smaller than the full one,
// account for every full member by orbit weight, and agree on symmetric
// formulas while rejecting asymmetric ones with a structured error.
func TestCheckSpecSymmetry(t *testing.T) {
	spec := hpl.UniverseSpec{Procs: []hpl.ProcID{"p", "q", "r"}, MaxSends: 1, MaxEvents: 5}
	quoSpec := spec
	quoSpec.Symmetry = "full"
	if quoSpec.Digest() == spec.Digest() {
		t.Fatal("quotient spec must not share the full spec's cache key")
	}
	full, err := hpl.CheckSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	quo, err := hpl.CheckSpec(quoSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !quo.Universe().IsQuotient() || quo.Universe().Len() >= full.Universe().Len() {
		t.Fatalf("quotient %d members vs full %d", quo.Universe().Len(), full.Universe().Len())
	}
	if quo.Universe().FullSize() != int64(full.Universe().Len()) {
		t.Fatalf("orbit sizes sum to %d, full universe has %d", quo.Universe().FullSize(), full.Universe().Len())
	}
	qrep, err := quo.ParseAndCheck(`"anyReceived(m)" -> "anySent(m)"`)
	if err != nil {
		t.Fatal(err)
	}
	frep, err := full.ParseAndCheck(`"anyReceived(m)" -> "anySent(m)"`)
	if err != nil {
		t.Fatal(err)
	}
	if qrep.Valid() != frep.Valid() || qrep.FullHolding != frep.FullHolding || qrep.FullTotal != frep.FullTotal {
		t.Fatalf("verdicts diverge: quotient %+v, full %+v", qrep, frep)
	}
	var asym *hpl.AsymmetryError
	if _, err := quo.ParseAndCheck(`K{q} "sent(p,m)"`); !errors.As(err, &asym) {
		t.Fatalf("asymmetric formula on quotient must fail with *AsymmetryError, got %v", err)
	}
	if _, err := quo.ParseAndCheckTemporal(`AG "sent(p,m)"`); !errors.As(err, &asym) {
		t.Fatalf("asymmetric temporal formula must fail with *AsymmetryError, got %v", err)
	}
	if _, err := full.ParseAndCheck(`K{q} "sent(p,m)"`); err != nil {
		t.Fatalf("full session must accept process-specific formulas: %v", err)
	}
}

// TestCheckSpec checks the spec-to-session path end to end: the universe
// matches a by-hand CheckProtocol enumeration and the standard atoms
// parse without extra Define calls.
func TestCheckSpec(t *testing.T) {
	spec := hpl.UniverseSpec{Procs: []hpl.ProcID{"q", "p"}, MaxSends: 1, MaxEvents: 4}
	ck, err := hpl.CheckSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := hpl.CheckProtocol(hpl.NewFree(hpl.FreeConfig{
		Procs: []hpl.ProcID{"p", "q"}, MaxSends: 1,
	}), hpl.WithMaxEvents(4))
	if err != nil {
		t.Fatal(err)
	}
	if ck.Universe().Len() != ref.Universe().Len() {
		t.Fatalf("spec universe has %d members, by-hand %d", ck.Universe().Len(), ref.Universe().Len())
	}
	rep, err := ck.ParseAndCheck(`K{q} "sent(p,m)" -> "sent(p,m)"`)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Valid() {
		t.Errorf("knowledge-implies-truth not valid over spec universe")
	}
	trep, err := ck.ParseAndCheckTemporal(`AG (K{q} "sent(p,m)" -> Once "received(q,m)")`)
	if err != nil {
		t.Fatal(err)
	}
	if !trep.AtInit {
		t.Errorf("gain theorem does not hold at init over spec universe")
	}
	if _, err := ck.Parse(`"quiescent"`); err != nil {
		t.Errorf("standard atom missing from spec vocabulary: %v", err)
	}
}

// TestSpecFaults covers the adversarial-channel field end to end:
// equivalent model spellings share a cache key, validation rejects bad
// grammar, unknown crash targets and symmetry-breaking combinations,
// and a fault spec's session exposes the fault atoms and a strictly
// larger universe.
func TestSpecFaults(t *testing.T) {
	base := hpl.UniverseSpec{Procs: []hpl.ProcID{"p", "q"}, MaxSends: 1, MaxEvents: 4, Faults: "crash,drop:1,dup:1"}
	for _, spelling := range []string{"dup:1, crash, drop:1", "DROP:1,DUP:1,CRASH"} {
		s := base
		s.Faults = spelling
		if s.Digest() != base.Digest() {
			t.Errorf("fault spelling %q does not collide with canonical %q", spelling, base.Faults)
		}
	}
	if c := base.Canonical(); c.Faults != "crash,drop:1,dup:1" {
		t.Errorf("canonical faults = %q", c.Faults)
	}

	ok := hpl.UniverseSpec{Procs: []hpl.ProcID{"p", "q"}, MaxSends: 1, MaxEvents: 4}
	for _, bad := range []string{"lossy", "drop:-1", "crash:", "crash;drop:1"} {
		s := ok
		s.Faults = bad
		if err := s.Validate(); err == nil {
			t.Errorf("faults %q validated", bad)
		}
	}
	s := ok
	s.Faults = "crash:r" // r is not a process of the spec
	if err := s.Validate(); err == nil {
		t.Errorf("crash of unknown process validated")
	}
	s = ok
	s.Symmetry, s.Faults = "full", "crash:p"
	if err := s.Validate(); err == nil {
		t.Errorf("process-specific crash under symmetry quotient validated")
	}
	s.Faults = "crash" // uniform: every process crashable, quotient sound
	if err := s.Validate(); err != nil {
		t.Errorf("uniform crash under symmetry rejected: %v", err)
	}

	reliable, err := hpl.CheckSpec(ok)
	if err != nil {
		t.Fatal(err)
	}
	fs := ok
	fs.Faults = "crash"
	faulty, err := hpl.CheckSpec(fs)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Universe().Len() <= reliable.Universe().Len() {
		t.Fatalf("fault universe %d members, reliable %d — wrapping must add computations",
			faulty.Universe().Len(), reliable.Universe().Len())
	}
	rep, err := faulty.ParseAndCheckTemporal(`AG ("crashed(q)" -> "anyCrashed")`)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AtInit {
		t.Errorf("crashed(q) -> anyCrashed fails on fault universe")
	}
	if _, err := faulty.Parse(`"crashed(p)"`); err != nil {
		t.Errorf("fault atom missing from spec vocabulary: %v", err)
	}
	if _, err := reliable.Parse(`"anyCrashed"`); err == nil {
		t.Errorf("reliable spec vocabulary should not include fault atoms")
	}
}

// TestSpecJSONRoundTrip guards the wire format: a spec survives
// marshal/unmarshal with its digest intact.
func TestSpecJSONRoundTrip(t *testing.T) {
	s := hpl.UniverseSpec{Procs: []hpl.ProcID{"p", "q", "r"}, MaxSends: 2, MaxEvents: 6, Cap: 200000, Faults: "crash,drop:1"}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got hpl.UniverseSpec
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Digest() != s.Digest() {
		t.Errorf("digest changed across JSON round trip")
	}
}
