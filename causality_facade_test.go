package hpl_test

import (
	"strings"
	"testing"

	"hpl"
)

func TestFacadeCausality(t *testing.T) {
	c := hpl.NewBuilder().
		Send("p", "q", "m").
		Receive("q", "p").
		Internal("r", "solo").
		MustBuild()
	g := hpl.CausalGraphOf(c)
	if !g.HappenedBefore(0, 1) {
		t.Errorf("send must precede receive")
	}
	if !g.Concurrent(0, 2) {
		t.Errorf("r's event is concurrent")
	}
	ok, err := hpl.HasChainIn(hpl.Empty(), c, []hpl.ProcSet{hpl.Singleton("p"), hpl.Singleton("q")})
	if err != nil || !ok {
		t.Errorf("chain <p q> missing: %v", err)
	}
	vcs := hpl.VectorClocks(c.Events())
	if vcs[1]["p"] != 1 || vcs[1]["q"] != 1 {
		t.Errorf("vc of receive = %v", vcs[1])
	}
	lc := hpl.LamportClocks(c.Events())
	if lc[0] >= lc[1] {
		t.Errorf("lamport clocks out of order")
	}
}

func TestFacadeCuts(t *testing.T) {
	c := hpl.NewBuilder().Send("p", "q", "m").Receive("q", "p").MustBuild()
	g := hpl.CausalGraphOf(c)
	cut := g.CutBefore(0)
	sub, err := hpl.ExtractCut(c, cut)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 1 {
		t.Fatalf("extracted %d events", sub.Len())
	}
}

func TestFacadeTraceText(t *testing.T) {
	c, err := hpl.ParseTraceText(strings.NewReader("send p q m\nrecv q p\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("events = %d", c.Len())
	}
}

func TestFacadeEveryone(t *testing.T) {
	u := hpl.MustEnumerateWith(hpl.NewFree(hpl.FreeConfig{
		Procs:    []hpl.ProcID{"p", "q"},
		MaxSends: 1,
	}), hpl.WithMaxEvents(4))
	ev := hpl.NewEvaluator(u)
	b := hpl.NewAtom(hpl.SentTag("p", "m"))
	full := hpl.NewBuilder().Send("p", "q", "m").Receive("q", "p").MustBuild()
	if !ev.MustHolds(hpl.Everyone(hpl.NewProcSet("p", "q"), b), full) {
		t.Errorf("E b must hold after delivery")
	}
	depths := hpl.EveryoneDepth(ev, b, 3)
	if depths[u.IndexOf(full)] < 1 {
		t.Errorf("depth at full delivery = %d", depths[u.IndexOf(full)])
	}
	if hpl.EveryoneK(hpl.NewProcSet("p"), b, 0).Key() != b.Key() {
		t.Errorf("E^0 must be identity")
	}
}

func TestFacadeStateAbstraction(t *testing.T) {
	u := hpl.MustEnumerateWith(hpl.NewFree(hpl.FreeConfig{
		Procs:    []hpl.ProcID{"p", "q"},
		MaxSends: 1,
	}), hpl.WithMaxEvents(4))
	se := hpl.NewStateEvaluator(u, hpl.CountersAbstraction())
	b := hpl.NewAtom(hpl.SentTag("p", "m"))
	if !se.Valid(hpl.Implies(hpl.Knows(hpl.Singleton("q"), b), b)) {
		t.Errorf("veridicality must survive abstraction")
	}
	custom := hpl.NewAbstraction("len", func(_ hpl.ProcID, proj []hpl.Event) string {
		if len(proj) == 0 {
			return "idle"
		}
		return "busy"
	})
	se2 := hpl.NewStateEvaluator(u, custom)
	if !se2.Valid(hpl.Implies(hpl.Knows(hpl.Singleton("q"), b), b)) {
		t.Errorf("custom abstraction broke veridicality")
	}
	if hpl.FullHistoryAbstraction().Name() == "" {
		t.Errorf("abstraction name empty")
	}
}
