package hpl_test

import (
	"encoding/json"
	"strings"
	"testing"

	"hpl"
	"hpl/internal/causality"
	"hpl/internal/knowledge"
	"hpl/internal/protocols/diffusing"
	"hpl/internal/termination"
	"hpl/internal/trace"
)

// TestPipelineSimulationToTheory drives the full stack: simulate a
// Dijkstra–Scholten run, serialize and re-validate the recorded
// computation, then check the theory on it — chains to the root before
// detection, consistent-cut extraction, and the overhead bound.
func TestPipelineSimulationToTheory(t *testing.T) {
	w := diffusing.Workload{
		Topo:          diffusing.Complete(5),
		TotalMessages: 30,
		FanOut:        2,
		Seed:          123,
	}
	res, err := diffusing.RunDS(w)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected || !res.Correct {
		t.Fatalf("run failed: %+v", res)
	}

	// Serialize → parse → identical.
	data, err := json.Marshal(res.Comp)
	if err != nil {
		t.Fatal(err)
	}
	var back trace.Computation
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.SameAs(res.Comp) {
		t.Fatal("JSON round trip changed the computation")
	}
	text := res.Comp.FormatText()
	reparsed, err := hpl.ParseTraceText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if !reparsed.SameAs(res.Comp) {
		t.Fatal("text round trip changed the computation")
	}

	// Theory on the recorded run: knowledge-gain chains to the root.
	if err := termination.CheckDetectionChains(res, w.Topo.Procs[0]); err != nil {
		t.Fatal(err)
	}

	// Overhead bound shape.
	if res.Control != res.Basic {
		t.Fatalf("DS overhead %d != basic %d", res.Control, res.Basic)
	}

	// Consistent-cut extraction (Observation 2) on the real trace.
	g := causality.FromComputation(res.Comp)
	cut := g.CutBefore(res.Comp.Len() / 2)
	sub, err := causality.Extract(res.Comp, cut)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.NewComputation(sub.Events()); err != nil {
		t.Fatalf("extracted cut invalid: %v", err)
	}

	// Vector clocks agree with the happened-before graph on a sample.
	vcs := causality.VectorClocks(res.Comp.Events())
	for i := 0; i < res.Comp.Len(); i += 7 {
		for j := 0; j < res.Comp.Len(); j += 11 {
			if i == j {
				continue
			}
			if g.HappenedBefore(i, j) != vcs[i].Leq(vcs[j]) {
				t.Fatalf("clock/graph disagreement at (%d,%d)", i, j)
			}
		}
	}
}

// TestPipelineUniverseToFormula drives enumeration → parsing → nested
// evaluation → theorem checking on one universe.
func TestPipelineUniverseToFormula(t *testing.T) {
	u := hpl.MustEnumerateWith(hpl.NewFree(hpl.FreeConfig{
		Procs:    []hpl.ProcID{"p", "q"},
		MaxSends: 1,
	}), hpl.WithMaxEvents(5))
	ev := hpl.NewEvaluator(u)
	vocab := hpl.NewVocabulary(hpl.SentTag("p", "m"), hpl.ReceivedTag("q", "m"))

	// Veridicality and introspection via the textual language.
	for _, input := range []string{
		`K{q} "sent(p,m)" -> "sent(p,m)"`,
		`K{q} K{q} "sent(p,m)" -> K{q} "sent(p,m)"`,
		`K{p} !K{p} "received(q,m)" -> !K{p} "received(q,m)"`,
	} {
		f, err := hpl.ParseFormula(input, vocab)
		if err != nil {
			t.Fatalf("%q: %v", input, err)
		}
		if !ev.Valid(f) {
			t.Fatalf("%q must be valid", input)
		}
	}

	// Theorem 5 via the facade-visible pieces: find a gain and confirm
	// the chain.
	b := hpl.NewAtom(hpl.SentTag("p", "m"))
	kb := hpl.Knows(hpl.Singleton("q"), b)
	for i := 0; i < u.Len(); i++ {
		y := u.At(i)
		if !ev.MustHolds(kb, y) {
			continue
		}
		x := hpl.Empty()
		ok, err := hpl.HasChainIn(x, y, []hpl.ProcSet{hpl.Singleton("q")})
		if err != nil || !ok {
			t.Fatalf("gain without chain <q>: %v", err)
		}
	}
}

// TestPipelineStateAbstractionSoundEndToEnd confirms the §6 abstraction
// path through the facade.
func TestPipelineStateAbstractionSoundEndToEnd(t *testing.T) {
	u := hpl.MustEnumerateWith(hpl.NewFree(hpl.FreeConfig{
		Procs:    []hpl.ProcID{"p", "q"},
		MaxSends: 1,
	}), hpl.WithMaxEvents(4))
	concrete := hpl.NewEvaluator(u)
	abstract := hpl.NewStateEvaluator(u, hpl.CountersAbstraction())
	b := hpl.NewAtom(hpl.SentTag("p", "m"))
	kb := hpl.Knows(hpl.Singleton("q"), b)
	for i := 0; i < u.Len(); i++ {
		if abstract.HoldsAt(kb, i) && !concrete.HoldsAt(kb, i) {
			t.Fatalf("abstraction unsound at member %d", i)
		}
	}
	_ = knowledge.Stats{} // keep the dependency explicit for the reader
}
