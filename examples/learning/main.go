// How processes learn, replayed as temporal model checking: the paper's
// knowledge gain theorem (Theorem 5) says knowledge arrives only along
// message chains, and the loss theorem (Theorem 6) says knowledge about
// others leaks away only when the knower itself acts. Both become
// one-line temporal validities over the prefix-extension transition
// graph — member i steps to member j when j extends i by one event — so
// "q comes to know b", "once learned, b is stable" and "knowledge is
// lost while the fact still holds" are checked exhaustively with
// Checker.CheckTemporal on two protocols: the acknowledgement chain and
// the token bus.
//
// Run with: go run ./examples/learning
package main

import (
	"fmt"
	"os"

	"hpl"
	"hpl/internal/protocols/ackchain"
	"hpl/internal/protocols/tokenbus"
)

// verdicts accumulates checks so the demo fails loudly if a claimed
// theorem stops holding.
var failed bool

func check(name string, rep hpl.TemporalReport, want bool) {
	status := "holds"
	if !rep.AtInit {
		status = "fails"
	}
	marker := "✓"
	if rep.AtInit != want {
		marker = "✗ UNEXPECTED"
		failed = true
	}
	fmt.Printf("  %-58s %s at init (%d/%d members) %s\n", name, status, rep.Holding, rep.Total, marker)
}

func main() {
	fmt.Println("== Acknowledgement chain (p ⇄ q, 2 messages) ==")
	chain := ackchain.MustNew("p", "q", 2)
	ck := hpl.MustCheckProtocol(chain, hpl.WithMaxEvents(4), hpl.WithParallelism(2))
	b := hpl.NewAtom(chain.Base()) // "p sent message 1"
	kqb := hpl.Knows(hpl.Singleton("q"), b)
	recv := hpl.NewAtom(hpl.ReceivedTag("q", ackchain.Tag(1)))

	// Theorem 5 as a temporal validity: whenever q knows b, a message
	// chain from p has reached q — i.e. the receive is in q's past.
	check("gain: AG(K{q} b -> Once received(q,ack1))",
		ck.CheckTemporal(hpl.AG(hpl.Implies(kqb, hpl.Once(recv)))), true)
	// The until phrasing: on every run q stays ignorant of b exactly
	// until the message arrives.
	check("gain: A[ !K{q} b U received(q,ack1) ]",
		ck.CheckTemporal(hpl.AU(hpl.Not(kqb), recv)), true)
	// Learning actually happens: q starts ignorant and can come to know.
	check("learning is reachable: !K{q} b & EF K{q} b",
		ck.CheckTemporal(hpl.And(hpl.Not(kqb), hpl.EF(kqb))), true)
	// Stability: b is about p's past, and q's evidence (the received
	// message) persists in every extension — once learned, never lost.
	check("stability: AG(K{q} b -> AG K{q} b)",
		ck.CheckTemporal(hpl.AG(hpl.Implies(kqb, hpl.AG(kqb)))), true)
	// The corollary to Lemma 3: no number of acknowledgements ever
	// produces common knowledge, anywhere in the future.
	check("no common knowledge ever: AG !C b",
		ck.CheckTemporal(hpl.AG(hpl.Not(hpl.Common(b)))), true)

	fmt.Println()
	fmt.Println("== Token bus (p — q — r, token starts at p) ==")
	bus := tokenbus.MustNew("p", "q", "r")
	bk := hpl.MustCheckProtocol(bus, hpl.WithMaxEvents(6), hpl.WithParallelism(2))
	sentToken := hpl.NewAtom(hpl.SentTag("p", tokenbus.TokenTag))
	gotToken := hpl.NewAtom(hpl.ReceivedTag("q", tokenbus.TokenTag))
	kq := func(f hpl.Formula) hpl.Formula { return hpl.Knows(hpl.Singleton("q"), f) }

	// Gain again, on a different protocol: q learns that p released the
	// token only by receiving it.
	check("gain: AG(K{q} sent(p,token) -> Once received(q,token))",
		bk.CheckTemporal(hpl.AG(hpl.Implies(kq(sentToken), hpl.Once(gotToken)))), true)

	// Loss (Theorem 6's phenomenon): while q holds the token it knows
	// the token is not at r; one send by q later the fact still holds
	// (the token is in flight) — but the knowledge is gone.
	notAtR := hpl.Not(hpl.NewAtom(bus.TokenAt("r")))
	lost := hpl.EF(hpl.And(kq(notAtR), notAtR,
		hpl.EX(hpl.And(hpl.Not(kq(notAtR)), notAtR))))
	check("loss: EF(K{q} !t@r & !t@r & EX(!K{q} !t@r & !t@r))",
		bk.CheckTemporal(lost), true)
	// Contrast with the chain: token-position knowledge is NOT stable.
	check("no stability: AG(K{q} !t@r -> AG K{q} !t@r)",
		bk.CheckTemporal(hpl.AG(hpl.Implies(kq(notAtR), hpl.AG(kq(notAtR))))), false)

	fmt.Println()
	if failed {
		fmt.Println("some checks did not match the paper's theorems")
		os.Exit(1)
	}
	fmt.Println("all temporal checks agree with the paper's gain/loss theorems")
}
