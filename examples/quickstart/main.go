// Quickstart: build computations, test isomorphism, and ask epistemic
// questions through a single hpl.Checker session.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"hpl"
)

func main() {
	// A computation: p sends "hello" to q; q receives it.
	c := hpl.NewBuilder().
		Send("p", "q", "hello").
		Receive("q", "p").
		MustBuild()
	fmt.Println("computation:")
	fmt.Println(c)

	// Isomorphism: the prefix before the receive looks identical to p
	// (p's projection is unchanged), but different to q.
	before := c.Prefix(1)
	fmt.Printf("\nbefore [p] after: %v\n", before.IsomorphicTo(c, hpl.Singleton("p")))
	fmt.Printf("before [q] after: %v\n", before.IsomorphicTo(c, hpl.Singleton("q")))

	// Knowledge: open a checking session over every computation of the
	// system (p may send one message) and evaluate "q knows p sent
	// hello". CheckProtocol enumerates the universe — in parallel, and
	// cancellable via hpl.WithContext — and bundles the evaluator and
	// vocabulary behind one entrypoint.
	ck := hpl.MustCheckProtocol(hpl.NewFree(hpl.FreeConfig{
		Procs:    []hpl.ProcID{"p", "q"},
		MaxSends: 1,
		SendTags: []string{"hello"},
	}), hpl.WithMaxEvents(4), hpl.WithParallelism(4))
	sent := hpl.NewAtom(hpl.SentTag("p", "hello"))
	qKnows := hpl.Knows(hpl.NewProcSet("q"), sent)

	fmt.Printf("\nuniverse: %d computations\n", ck.Universe().Len())
	fmt.Printf("q knows sent(p) before receive: %v\n", ck.MustHolds(qKnows, before))
	fmt.Printf("q knows sent(p) after  receive: %v\n", ck.MustHolds(qKnows, c))

	// The same question in the textual formula language.
	ck.Define(hpl.SentTag("p", "hello"))
	rep, err := ck.ParseAndCheck(`K{q} "sent(p,hello)" -> "sent(p,hello)"`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n%q is valid: %v (fact 4: knowledge implies truth)\n",
		hpl.PrintFormula(rep.Formula), rep.Valid())
}
