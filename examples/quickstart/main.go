// Quickstart: build computations, test isomorphism, and ask epistemic
// questions with the public hpl API.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"hpl"
)

func main() {
	// A computation: p sends "hello" to q; q receives it.
	c := hpl.NewBuilder().
		Send("p", "q", "hello").
		Receive("q", "p").
		MustBuild()
	fmt.Println("computation:")
	fmt.Println(c)

	// Isomorphism: the prefix before the receive looks identical to p
	// (p's projection is unchanged), but different to q.
	before := c.Prefix(1)
	fmt.Printf("\nbefore [p] after: %v\n", before.IsomorphicTo(c, hpl.Singleton("p")))
	fmt.Printf("before [q] after: %v\n", before.IsomorphicTo(c, hpl.Singleton("q")))

	// Knowledge: enumerate every computation of the system (p may send
	// one message) and evaluate "q knows p sent hello".
	u := hpl.MustEnumerateFree(hpl.FreeConfig{
		Procs:    []hpl.ProcID{"p", "q"},
		MaxSends: 1,
		SendTags: []string{"hello"},
	}, 4, 0)
	ev := hpl.NewEvaluator(u)
	sent := hpl.NewAtom(hpl.SentTag("p", "hello"))
	qKnows := hpl.Knows(hpl.NewProcSet("q"), sent)

	fmt.Printf("\nuniverse: %d computations\n", u.Len())
	fmt.Printf("q knows sent(p) before receive: %v\n", ev.MustHolds(qKnows, before))
	fmt.Printf("q knows sent(p) after  receive: %v\n", ev.MustHolds(qKnows, c))

	// The same question in the textual formula language.
	vocab := hpl.NewVocabulary(hpl.SentTag("p", "hello"))
	f, err := hpl.ParseFormula(`K{q} "sent(p,hello)" -> "sent(p,hello)"`, vocab)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n%q is valid: %v (fact 4: knowledge implies truth)\n",
		hpl.PrintFormula(f), ev.Valid(f))
}
