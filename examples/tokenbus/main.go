// Token bus: the paper's §4.1 example. A token moves along the bus
// p — q — r; exhaustive enumeration verifies that whenever r holds the
// token, r knows that q knows the token is not at p.
//
// Run with: go run ./examples/tokenbus
package main

import (
	"fmt"

	"hpl"
	"hpl/internal/protocols/tokenbus"
)

func main() {
	bus := tokenbus.MustNew("p", "q", "r")
	ck, err := hpl.CheckProtocol(bus, hpl.WithMaxEvents(8), hpl.WithParallelism(4))
	if err != nil {
		panic(err)
	}
	fmt.Printf("token bus p—q—r: %d computations enumerated\n", ck.Universe().Len())

	atP := hpl.NewAtom(bus.TokenAt("p"))
	atR := hpl.NewAtom(bus.TokenAt("r"))
	claim := hpl.Implies(atR,
		hpl.Knows(hpl.Singleton("r"),
			hpl.Knows(hpl.Singleton("q"), hpl.Not(atP))))

	fmt.Printf("claim: token@r ⇒ r knows q knows ¬token@p\n")
	fmt.Printf("valid over the whole universe: %v\n", ck.Valid(claim))

	// Show the knowledge states along one concrete run:
	// p passes to q, q passes to r.
	run := hpl.NewBuilder().
		Send("p", "q", tokenbus.TokenTag).
		Receive("q", "p").
		Send("q", "r", tokenbus.TokenTag).
		Receive("r", "q").
		MustBuild()
	qKnows := hpl.Knows(hpl.Singleton("q"), hpl.Not(atP))
	rKnowsQKnows := hpl.Knows(hpl.Singleton("r"), qKnows)
	fmt.Println("\nalong the run p→q→r:")
	for n := 0; n <= run.Len(); n++ {
		x := run.Prefix(n)
		fmt.Printf("  after %d events: q knows ¬token@p = %-5v  r knows q knows = %v\n",
			n, ck.MustHolds(qKnows, x), ck.MustHolds(rKnowsQKnows, x))
	}

	// A randomized long simulation conserves the token.
	comp, err := bus.Simulate(7, 30)
	if err != nil {
		panic(err)
	}
	holders := 0
	for _, p := range bus.Procs() {
		if bus.TokenAt(p).Holds(comp) {
			holders++
		}
	}
	fmt.Printf("\nsimulated 30 hops (%d events); token holders at end: %d, in flight: %d\n",
		comp.Len(), holders, len(comp.InFlight()))
}
