// Knowledge ladder: the coordinated-attack phenomenon on an
// acknowledgement chain. Each delivered acknowledgement buys exactly one
// rung of "everyone knows"; common knowledge needs infinitely many, and
// the paper's corollary to Lemma 3 says it can never be gained at all.
//
// Run with: go run ./examples/ladder
package main

import (
	"fmt"

	"hpl"
	"hpl/internal/protocols/ackchain"
)

func main() {
	fmt.Println("acknowledgement chain p ⇄ q, base fact b = \"message 1 was sent\":")
	fmt.Println("  messages  universe  max E^k  common knowledge")
	for _, total := range []int{1, 2, 3, 4} {
		s := ackchain.MustNew("p", "q", total)
		sess, err := hpl.CheckProtocol(s,
			hpl.WithMaxEvents(2*total), hpl.WithParallelism(4))
		if err != nil {
			panic(err)
		}
		b := hpl.NewAtom(s.Base())
		depths := hpl.EveryoneDepth(sess.Evaluator(), b, total+2)
		best := -1
		for _, d := range depths {
			if d > best {
				best = d
			}
		}
		ckLabel := "never"
		if !sess.Valid(hpl.Not(hpl.Common(b))) {
			ckLabel = "ATTAINED (bug!)"
		}
		fmt.Printf("  %8d  %8d  %7d  %s\n", total, sess.Universe().Len(), best, ckLabel)
	}

	// Walk the rungs along the 4-message full exchange.
	s := ackchain.MustNew("p", "q", 4)
	sess, err := hpl.CheckProtocol(s, hpl.WithMaxEvents(8), hpl.WithParallelism(4))
	if err != nil {
		panic(err)
	}
	b := hpl.NewAtom(s.Base())
	depths := hpl.EveryoneDepth(sess.Evaluator(), b, 6)
	full := s.FullExchange()
	fmt.Println("\nalong the full 4-message exchange:")
	for n := 0; n <= full.Len(); n++ {
		x := full.Prefix(n)
		i := sess.Universe().IndexOf(x)
		label := "—"
		if depths[i] >= 0 {
			label = fmt.Sprintf("E^%d b", depths[i])
		}
		last := "start"
		if n > 0 {
			last = full.At(n - 1).String()
		}
		fmt.Printf("  after %-38s %s\n", last, label)
	}
	fmt.Println("\nno finite exchange reaches common knowledge — the generals never attack.")
}
