// Adversarial channels: what happens to the paper's knowledge results
// when the channel misbehaves. Any protocol wraps into a fault model
// (crash-stop processes, dropped and duplicated messages) with one
// call, and the wrapped system enumerates through the same engine —
// the fault-extended universe simply has more computations, one per
// way the adversary could strike.
//
// Three results, each checked exhaustively:
//
//  1. the §5 impossibility is fault-monotone — the monitor stays
//     forever unsure of the worker's crash under every channel model;
//  2. the knowledge ladder of the acknowledgement chain stalls under
//     crash-stop: reliably every point can still reach K{q}(base),
//     but a crashed-before-receiving q is permanently shut out;
//  3. commit: "everyone knows committed" is attainable reliably and
//     dies with a crashed participant — and common knowledge of the
//     commit was never attainable in the first place (coordinated
//     attack needs no faults).
//
// Run with: go run ./examples/adversary
package main

import (
	"fmt"

	"hpl"
	"hpl/internal/failure"
	"hpl/internal/faults"
	"hpl/internal/knowledge"
	"hpl/internal/protocols/ackchain"
	"hpl/internal/universe"
)

func main() {
	fmt.Println("1. §5 forever-unsure, per adversarial channel model:")
	for _, m := range failure.AdversarialModels() {
		rep, err := failure.CheckForeverUnsureUnder(m, 2)
		if err != nil {
			panic(err)
		}
		fmt.Printf("   %-22s %6d computations (%d crash, %d drop, %d dup): monitor never sure\n",
			rep.Model, rep.UniverseSize, rep.CrashComputations,
			rep.DropComputations, rep.DupComputations)
	}

	fmt.Println("\n2. the acknowledgement-chain ladder under crash-stop:")
	chain := ackchain.MustNew("p", "q", 2)
	reliable, err := chain.Enumerate(0)
	if err != nil {
		panic(err)
	}
	crashed, err := universe.EnumerateWith(
		faults.Wrap(chain, faults.Model{CrashAll: true}),
		universe.WithMaxEvents(2*chain.Total+2))
	if err != nil {
		panic(err)
	}
	base := knowledge.NewAtom(chain.Base())
	canLearn := knowledge.EF(knowledge.Knows(hpl.Singleton("q"), base))
	er := knowledge.NewEvaluator(reliable)
	ec := knowledge.NewEvaluator(crashed)
	fmt.Printf("   reliable:    EF K{q}(base) valid over %d computations: %v\n",
		reliable.Len(), er.Valid(canLearn))
	stalled := 0
	for i := 0; i < crashed.Len(); i++ {
		if !ec.HoldsAt(canLearn, i) {
			stalled++
		}
	}
	fmt.Printf("   under crash: ladder permanently stalled at %d / %d computations\n",
		stalled, crashed.Len())
	shutOut := knowledge.Implies(
		knowledge.And(
			knowledge.NewAtom(knowledge.Crashed("q")),
			knowledge.Not(knowledge.NewAtom(knowledge.ReceivedTag("q", ackchain.Tag(1))))),
		knowledge.AG(knowledge.Not(knowledge.Knows(hpl.Singleton("q"), base))))
	fmt.Printf("   exactly why: crashed(q) ∧ ¬received(q,%s) ⇒ AG ¬K{q}(base): %v\n",
		ackchain.Tag(1), ec.Valid(shutOut))

	fmt.Println("\n3. the same layer through the declarative spec (what hpld serves):")
	spec := hpl.UniverseSpec{
		Procs: []hpl.ProcID{"p", "q"}, MaxSends: 1, MaxEvents: 4,
		Faults: "crash,drop:1",
	}
	ck, err := hpl.CheckSpec(spec)
	if err != nil {
		panic(err)
	}
	fmt.Printf("   spec faults=%q: %d computations (digest %.12s…)\n",
		spec.Canonical().Faults, ck.Universe().Len(), spec.Digest())
	for _, f := range []string{
		`"crashed(q)" -> "anyCrashed"`,
		`K{p} "crashed(q)" -> "crashed(q)"`,
	} {
		rep, err := ck.ParseAndCheck(f)
		if err != nil {
			panic(err)
		}
		fmt.Printf("   %-34s valid: %v\n", f, rep.Valid())
	}
	trep, err := ck.ParseAndCheckTemporal(`AG ("anyCrashed" -> AG "anyCrashed")`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("   crash-stop is absorbing (AG (anyCrashed -> AG anyCrashed)): %v\n", trep.AtInit)
}
