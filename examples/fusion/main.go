// Fusion: Lemma 1 and Theorem 2 (Figures 3-2 and 3-3). Two computations
// that extend a common prefix on disjoint "sides" are fused into one
// computation containing both sides' events.
//
// Run with: go run ./examples/fusion
package main

import (
	"fmt"

	"hpl"
)

func main() {
	all := hpl.NewProcSet("p", "q")

	// Common prefix: p seeds q with one message.
	x := hpl.NewBuilder().
		Send("p", "q", "seed").
		Receive("q", "p").
		MustBuild()

	// y extends x with p's work only; z extends x with q's work only.
	y := hpl.FromComputation(x).
		Internal("p", "p-work-1").
		Send("p", "q", "p-msg"). // stays in flight within y
		MustBuild()
	z := hpl.FromComputation(x).
		Internal("q", "q-work-1").
		Internal("q", "q-work-2").
		MustBuild()

	fmt.Println("x (common prefix):")
	fmt.Println(x)
	fmt.Println("\ny = x + p's events;  z = x + q's events")

	// Theorem 2: no chain <q̄ …> obstructions exist, so y's p-events and
	// z's q-events fuse.
	f, err := hpl.Theorem2(x, y, z, hpl.Singleton("p"), all)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nfused computation w (all of p from y, all of q from z):")
	fmt.Println(f.W)
	fmt.Printf("\ny [p] w: %v\n", y.IsomorphicTo(f.W, hpl.Singleton("p")))
	fmt.Printf("z [q] w: %v\n", z.IsomorphicTo(f.W, hpl.Singleton("q")))

	// The same square via Lemma 1 directly.
	sq, err := hpl.Lemma1(x, y, z, hpl.Singleton("q"), hpl.Singleton("p"), all)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nlemma 1 square verified: %v\n", sq.Verify() == nil)

	// When a cross-side chain exists, fusion correctly refuses: in y2,
	// p *reacts* to a new message from q (chain <q p> = <P̄ P> in the
	// suffix), so p's events in y2 depend on q-activity that w would not
	// contain.
	y2 := hpl.FromComputation(x).
		Send("q", "p", "ping").
		Receive("p", "q").
		MustBuild()
	if _, err := hpl.Theorem2(x, y2, z, hpl.Singleton("p"), all); err != nil {
		fmt.Printf("\nfusion with a <P̄ P> chain refused as expected:\n  %v\n", err)
	} else {
		panic("fusion unexpectedly succeeded")
	}
}
