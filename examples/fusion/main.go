// Fusion: Lemma 1 and Theorem 2 (Figures 3-2 and 3-3). Two computations
// that extend a common prefix on disjoint "sides" are fused into one
// computation containing both sides' events — and, checked over an
// exhaustive universe through the hpl.Checker session API, the fusion
// provably transports each side's knowledge: y [p] w makes p's
// knowledge at y and at w identical.
//
// Run with: go run ./examples/fusion
package main

import (
	"fmt"

	"hpl"
)

func main() {
	all := hpl.NewProcSet("p", "q")

	// Common prefix: p seeds q with one message.
	x := hpl.NewBuilder().
		Send("p", "q", "seed").
		Receive("q", "p").
		MustBuild()

	// y extends x with p's work only; z extends x with q's work only.
	y := hpl.FromComputation(x).
		Internal("p", "work").
		Send("p", "q", "ping"). // stays in flight within y
		MustBuild()
	z := hpl.FromComputation(x).
		Internal("q", "work").
		MustBuild()

	fmt.Println("x (common prefix):")
	fmt.Println(x)
	fmt.Println("\ny = x + p's events;  z = x + q's events")

	// Theorem 2: no chain <q̄ …> obstructions exist, so y's p-events and
	// z's q-events fuse.
	f, err := hpl.Theorem2(x, y, z, hpl.Singleton("p"), all)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nfused computation w (all of p from y, all of q from z):")
	fmt.Println(f.W)
	fmt.Printf("\ny [p] w: %v\n", y.IsomorphicTo(f.W, hpl.Singleton("p")))
	fmt.Printf("z [q] w: %v\n", z.IsomorphicTo(f.W, hpl.Singleton("q")))

	// The same square via Lemma 1 directly.
	sq, err := hpl.Lemma1(x, y, z, hpl.Singleton("q"), hpl.Singleton("p"), all)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nlemma 1 square verified: %v\n", sq.Verify() == nil)

	// Knowledge rides the fusion. Open a checking session over the free
	// system all four computations live in: every computation with at
	// most MaxSends sends and MaxInternal internal events per process.
	ck := hpl.MustCheckProtocol(hpl.NewFree(hpl.FreeConfig{
		Procs:        []hpl.ProcID{"p", "q"},
		MaxSends:     2,
		MaxInternal:  1,
		SendTags:     []string{"seed", "ping"},
		InternalTags: []string{"work"},
	}), hpl.WithMaxEvents(5), hpl.WithParallelism(4))
	fmt.Printf("\nsession universe: %d computations\n", ck.Universe().Len())

	// y [p] w: p cannot distinguish y from w, so p's knowledge is the
	// same at both — here, that p itself pinged q.
	pinged := hpl.NewAtom(hpl.SentTag("p", "ping"))
	kp := hpl.Knows(hpl.Singleton("p"), pinged)
	fmt.Printf("p knows sent(p,ping):  at y %v, at w %v (transported by y [p] w)\n",
		ck.MustHolds(kp, y), ck.MustHolds(kp, f.W))

	// z [q] w does the same for q's side.
	seeded := hpl.NewAtom(hpl.ReceivedTag("q", "seed"))
	kq := hpl.Knows(hpl.Singleton("q"), seeded)
	fmt.Printf("q knows received(q,seed): at z %v, at w %v (transported by z [q] w)\n",
		ck.MustHolds(kq, z), ck.MustHolds(kq, f.W))

	// What does NOT transport: q never learns about the in-flight ping,
	// at z or at w — knowledge of it would need a chain from p.
	kqPing := hpl.Knows(hpl.Singleton("q"), pinged)
	fmt.Printf("q knows sent(p,ping):  at z %v, at w %v\n",
		ck.MustHolds(kqPing, z), ck.MustHolds(kqPing, f.W))

	// When a cross-side chain exists, fusion correctly refuses: in y2,
	// p *reacts* to a new message from q (chain <q p> = <P̄ P> in the
	// suffix), so p's events in y2 depend on q-activity that w would not
	// contain.
	y2 := hpl.FromComputation(x).
		Send("q", "p", "ping").
		Receive("p", "q").
		MustBuild()
	if _, err := hpl.Theorem2(x, y2, z, hpl.Singleton("p"), all); err != nil {
		fmt.Printf("\nfusion with a <P̄ P> chain refused as expected:\n  %v\n", err)
	} else {
		panic("fusion unexpectedly succeeded")
	}
}
