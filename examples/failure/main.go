// Failure detection (§5): without timing assumptions the monitor is
// unsure of a crash at every computation (checked exhaustively); with a
// synchrony bound, a timeout detector works — and false-positives the
// moment the bound is violated.
//
// Run with: go run ./examples/failure
package main

import (
	"fmt"

	"hpl"
	"hpl/internal/failure"
	"hpl/internal/protocols/heartbeat"
)

func main() {
	rep, err := failure.CheckForeverUnsure(2)
	if err != nil {
		panic(err)
	}
	fmt.Println("asynchronous heartbeat system (worker may crash at any point):")
	fmt.Printf("  universe: %d computations, %d with a crash\n",
		rep.UniverseSize, rep.CrashComputations)
	fmt.Printf("  monitor ever knows 'crashed':   %v\n", rep.MonitorEverKnows)
	fmt.Printf("  monitor ever knows 'not crashed': %v\n", rep.MonitorEverKnowsNot)
	fmt.Println("  ⇒ the monitor is unsure at every computation: failure detection")
	fmt.Println("    is impossible without timing assumptions (paper, §5).")

	// The same impossibility, stated directly as one validity check in a
	// Checker session over the heartbeat protocol.
	hb, err := heartbeat.New("w", "m", 2)
	if err != nil {
		panic(err)
	}
	ck, err := hpl.CheckProtocol(hb,
		hpl.WithMaxEvents(hb.SuggestedMaxEvents()), hpl.WithParallelism(4))
	if err != nil {
		panic(err)
	}
	failed := hpl.NewAtom(hb.Failed())
	unsure := hpl.Not(hpl.Sure(hpl.Singleton("m"), failed))
	fmt.Printf("\n  restated: ¬(m sure 'failed') valid over %d computations: %v\n",
		ck.Universe().Len(), ck.Valid(unsure))

	fmt.Println("\nsynchronous timeout detector (rounds; heartbeat each round):")
	fmt.Println("  timeout  delay  crash@  suspected@  false positive  latency")
	cases := []failure.SyncConfig{
		{CrashAtRound: 10, Timeout: 2, Delay: 1, Rounds: 50},
		{CrashAtRound: 10, Timeout: 5, Delay: 1, Rounds: 50},
		{CrashAtRound: 10, Timeout: 8, Delay: 2, Rounds: 60},
		{CrashAtRound: -1, Timeout: 3, Delay: 6, Rounds: 40},
	}
	for _, cfg := range cases {
		res, err := failure.RunSync(cfg)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %7d  %5d  %6d  %10d  %14v  %7d\n",
			cfg.Timeout, cfg.Delay, cfg.CrashAtRound, res.SuspectedAt, res.FalsePositive, res.Latency)
	}
	fmt.Println("\nthe last row violates the synchrony bound (delay > timeout):")
	fmt.Println("the detector suspects a live worker — soundness depends entirely")
	fmt.Println("on the timing assumption, exactly as the theory predicts.")
}
