// Commit: knowledge flowing through an intermediary. Two participants
// never exchange a message, yet when p2 receives the commit decision it
// knows p1 voted yes — the knowledge travelled along the process chain
// <p1, coordinator, p2> exactly as Theorem 5 requires.
//
// Run with: go run ./examples/commit
package main

import (
	"fmt"

	"hpl"
	"hpl/internal/protocols/commit"
)

func main() {
	s := commit.MustNew("c", "p1", "p2")
	ck, err := hpl.CheckProtocol(s,
		hpl.WithMaxEvents(s.SuggestedMaxEvents()), hpl.WithParallelism(4))
	if err != nil {
		panic(err)
	}
	fmt.Printf("commit protocol (coordinator c, participants p1, p2): %d computations\n\n",
		ck.Universe().Len())

	p1Yes := hpl.NewAtom(s.VotedYes("p1"))
	p2Knows := hpl.Knows(hpl.Singleton("p2"), p1Yes)

	// Walk one all-yes run and watch p2's knowledge of p1's vote.
	run := hpl.NewBuilder().
		Send("p1", "c", commit.TagVoteYes).
		Send("p2", "c", commit.TagVoteYes).
		Receive("c", "p1").
		Receive("c", "p2").
		Send("c", "p1", commit.TagCommit).
		Send("c", "p2", commit.TagCommit).
		Receive("p1", "c").
		Receive("p2", "c").
		MustBuild()
	fmt.Println("along an all-yes run:")
	for n := 0; n <= run.Len(); n++ {
		x := run.Prefix(n)
		last := "start"
		if n > 0 {
			last = run.At(n - 1).String()
		}
		fmt.Printf("  after %-34s p2 knows p1 voted yes: %v\n",
			last, ck.MustHolds(p2Knows, x))
	}

	// The claims, checked over the whole universe.
	committed := hpl.NewAtom(s.DecidedCommit())
	got := hpl.NewAtom(s.GotCommit("p2"))
	fmt.Println("\nuniverse-wide claims:")
	fmt.Printf("  commit ⇒ coordinator knows both votes:  %v\n",
		ck.Valid(hpl.Implies(committed, hpl.Knows(hpl.Singleton("c"), hpl.And(p1Yes, hpl.NewAtom(s.VotedYes("p2")))))))
	fmt.Printf("  p2 got commit ⇒ p2 knows p1 voted yes:  %v\n",
		ck.Valid(hpl.Implies(got, p2Knows)))
	fmt.Printf("  commit ever common knowledge:           %v\n",
		!ck.Valid(hpl.Not(hpl.Common(committed))))
	fmt.Println("\np1 and p2 never talk, yet each learns the other's vote — through the")
	fmt.Println("coordinator, along the chain Theorem 5 demands.")
}
