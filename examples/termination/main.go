// Termination detection (§5): the overhead lower bound in action.
// Dijkstra–Scholten pays exactly one control message per basic message;
// weight throwing pays one per passive period and is driven to the same
// bound by an adversarial workload; a zero-overhead detector is unsound.
// An hpl.Checker session over an exhaustive universe shows why: no
// process ever *knows* the system is quiescent from its own view alone.
//
// Run with: go run ./examples/termination
package main

import (
	"fmt"

	"hpl"
	"hpl/internal/protocols/diffusing"
	"hpl/internal/termination"
)

func main() {
	// The epistemic root of the bound, model-checked through the session
	// API: enumerate every computation of a small free system and ask
	// who can know that no messages are in flight. Knowledge implies
	// truth (so a detector that *knows* is sound), but quiescence itself
	// is known to nobody — a silent process cannot exclude in-flight
	// messages from its isomorphism class, which is why every sound
	// detector must buy knowledge with control messages.
	ck := hpl.MustCheckProtocol(hpl.NewFree(hpl.FreeConfig{
		Procs:    []hpl.ProcID{"p", "q", "r"},
		MaxSends: 1,
	}), hpl.WithMaxEvents(5), hpl.WithParallelism(4))
	quiet := hpl.NewAtom(hpl.NoMessagesInFlight())
	fmt.Printf("free universe: %d computations\n", ck.Universe().Len())
	for _, p := range []hpl.ProcID{"p", "q", "r"} {
		kq := hpl.Knows(hpl.Singleton(p), quiet)
		sound := ck.Check(hpl.Implies(kq, quiet))
		attained := ck.Check(hpl.Implies(quiet, kq))
		fmt.Printf("  K{%s} quiescent ⇒ quiescent: valid=%v;  quiescent ⇒ K{%s} quiescent: holds at %d/%d\n",
			p, sound.Valid(), p, attained.Holding, attained.Total)
	}
	fmt.Println()

	fmt.Println("benign workload (complete graph, 6 processes):")
	fmt.Println("   M    DS overhead  DS ratio  credit overhead  credit ratio")
	rows, err := termination.Sweep(termination.SweepConfig{
		Sizes: []int{5, 10, 20, 40, 80},
		Procs: 6,
		Seed:  1,
	})
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		fmt.Printf("  %3d  %11d  %8.3f  %15d  %12.3f\n",
			r.Messages, r.DSControl, r.DSRatio, r.CreditControl, r.CreditRatio)
	}

	fmt.Println("\nadversarial workload (star of sinks — the paper's 'in general'):")
	fmt.Println("   M    DS overhead  DS ratio  credit overhead  credit ratio")
	rows, err = termination.Sweep(termination.SweepConfig{
		Sizes:       []int{5, 10, 20, 40},
		Procs:       8,
		Adversarial: true,
		Seed:        2,
	})
	if err != nil {
		panic(err)
	}
	for _, r := range rows {
		fmt.Printf("  %3d  %11d  %8.3f  %15d  %12.3f\n",
			r.Messages, r.DSControl, r.DSRatio, r.CreditControl, r.CreditRatio)
	}

	// The impossibility face: a detector with zero overhead messages
	// must be wrong on some schedule, because the computation it sees is
	// isomorphic (to it) with a terminated one.
	seed, res, err := termination.FindQuietCounterexample(6, 30, 2, 60)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nzero-overhead 'quiet' detector: unsound at seed %d\n", seed)
	fmt.Printf("  declared termination with basic messages in flight: %v\n", !res.Correct)
	fmt.Printf("  control messages used: %d\n", res.Control)

	// Detection is knowledge gain: a process chain must reach the root
	// from every participant (Theorem 5's necessary condition).
	w := diffusing.Workload{Topo: diffusing.Complete(5), TotalMessages: 25, FanOut: 2, Seed: 9}
	ds, err := diffusing.RunDS(w)
	if err != nil {
		panic(err)
	}
	if err := termination.CheckDetectionChains(ds, w.Topo.Procs[0]); err != nil {
		panic(err)
	}
	fmt.Println("\nDS detection verified against Theorem 5: a process chain reaches")
	fmt.Println("the root from every basic-message sender before the detect event.")
}
