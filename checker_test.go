package hpl_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"hpl"
)

func freeChecker(t *testing.T, opts ...hpl.EnumOption) *hpl.Checker {
	t.Helper()
	p := hpl.NewFree(hpl.FreeConfig{
		Procs:    []hpl.ProcID{"p", "q"},
		MaxSends: 1,
	})
	ck, err := hpl.CheckProtocol(p, append([]hpl.EnumOption{hpl.WithMaxEvents(4)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

func TestCheckerHoldsAndValid(t *testing.T) {
	ck := freeChecker(t)
	sent := hpl.NewAtom(hpl.SentTag("p", "m"))
	qKnows := hpl.Knows(hpl.Singleton("q"), sent)

	// Before q receives, q cannot know; after, it must.
	before := hpl.NewBuilder().Send("p", "q", "m").MustBuild()
	after := hpl.FromComputation(before).Receive("q", "p").MustBuild()
	if ck.MustHolds(qKnows, before) {
		t.Fatalf("q knows sent(p) before receiving")
	}
	if !ck.MustHolds(qKnows, after) {
		t.Fatalf("q does not know sent(p) after receiving")
	}

	// Fact 4: knowledge implies truth, valid over the whole universe.
	if !ck.Valid(hpl.Implies(qKnows, sent)) {
		t.Fatalf("K{q} b -> b is not valid")
	}
	if ck.Valid(sent) {
		t.Fatalf("sent(p,m) cannot be valid: the null computation is a member")
	}
}

func TestCheckerHoldsNonMember(t *testing.T) {
	ck := freeChecker(t)
	foreign := hpl.NewBuilder().Internal("zz", "x").MustBuild()
	if _, err := ck.Holds(hpl.True, foreign); err == nil {
		t.Fatalf("Holds accepted a non-member")
	}
}

func TestCheckerParseAndCheck(t *testing.T) {
	ck := freeChecker(t).Define(hpl.SentTag("p", "m"), hpl.ReceivedTag("q", "m"))

	rep, err := ck.ParseAndCheck(`K{q} "sent(p,m)" -> "sent(p,m)"`)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Valid() || rep.FirstFailure != -1 {
		t.Fatalf("fact 4 not valid: %+v", rep)
	}
	if rep.Total != ck.Universe().Len() || rep.Holding != rep.Total {
		t.Fatalf("report inconsistent: %+v", rep)
	}

	rep, err = ck.ParseAndCheck(`"sent(p,m)"`)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid() {
		t.Fatalf("sent(p,m) reported valid")
	}
	if rep.FirstFailure < 0 || rep.Holding >= rep.Total || rep.Holding == 0 {
		t.Fatalf("report inconsistent: %+v", rep)
	}
	if ck.HoldsAt(rep.Formula, rep.FirstFailure) {
		t.Fatalf("formula holds at its reported first failure")
	}

	if _, err := ck.ParseAndCheck(`"no-such-atom"`); err == nil {
		t.Fatalf("unknown atom parsed")
	}
}

func TestCheckerAtoms(t *testing.T) {
	ck := freeChecker(t).Define(hpl.SentTag("p", "m"), hpl.ReceivedTag("q", "m"))
	atoms := ck.Atoms()
	joined := strings.Join(atoms, " ")
	if !strings.Contains(joined, "sent(p,m)") || !strings.Contains(joined, "received(q,m)") {
		t.Fatalf("atoms = %v", atoms)
	}
	for i := 1; i < len(atoms); i++ {
		if atoms[i-1] >= atoms[i] {
			t.Fatalf("atoms not sorted: %v", atoms)
		}
	}
}

func TestCheckerLocalTo(t *testing.T) {
	ck := freeChecker(t)
	sent := hpl.NewAtom(hpl.SentTag("p", "m"))
	if !ck.LocalTo(sent, hpl.Singleton("p")) {
		t.Fatalf("sent(p,m) should be local to p")
	}
	if ck.LocalTo(sent, hpl.Singleton("q")) {
		t.Fatalf("sent(p,m) cannot be local to q")
	}
}

func TestCheckProtocolPropagatesOptions(t *testing.T) {
	big := hpl.NewFree(hpl.FreeConfig{
		Procs:    []hpl.ProcID{"p", "q", "r"},
		MaxSends: 2,
	})
	if _, err := hpl.CheckProtocol(big, hpl.WithMaxEvents(8), hpl.WithCap(50)); !errors.Is(err, hpl.ErrUniverseTooLarge) {
		t.Fatalf("err = %v, want ErrUniverseTooLarge", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := hpl.CheckProtocol(big, hpl.WithMaxEvents(8), hpl.WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCheckerParallelSessionAgrees(t *testing.T) {
	seq := freeChecker(t)
	var calls int
	par := freeChecker(t, hpl.WithParallelism(4), hpl.WithProgress(func(hpl.EnumProgress) { calls++ }))
	if calls == 0 {
		t.Fatalf("progress callback never invoked")
	}
	if seq.Universe().Len() != par.Universe().Len() {
		t.Fatalf("universe sizes differ: %d vs %d", seq.Universe().Len(), par.Universe().Len())
	}
	f := hpl.Knows(hpl.Singleton("q"), hpl.NewAtom(hpl.SentTag("p", "m")))
	for i := 0; i < seq.Universe().Len(); i++ {
		if seq.HoldsAt(f, i) != par.HoldsAt(f, i) {
			t.Fatalf("sessions disagree at member %d", i)
		}
	}
}

func TestMustCheckProtocolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	hpl.MustCheckProtocol(hpl.NewFree(hpl.FreeConfig{
		Procs:    []hpl.ProcID{"p", "q", "r"},
		MaxSends: 2,
	}), hpl.WithMaxEvents(8), hpl.WithCap(10))
}

// TestCheckerConcurrentQueries runs concurrent queries against one
// shared universe — through one shared Checker session and through
// per-goroutine sessions over the same Universe — and checks every
// answer against a sequentially computed oracle. Run under -race in CI:
// this is the contract that partition construction and the vector memo
// are goroutine-safe.
func TestCheckerConcurrentQueries(t *testing.T) {
	ck := freeChecker(t)
	u := ck.Universe()

	sent := hpl.NewAtom(hpl.SentTag("p", "m"))
	recv := hpl.NewAtom(hpl.ReceivedTag("q", "m"))
	formulas := []hpl.Formula{
		hpl.Implies(hpl.Knows(hpl.Singleton("q"), sent), sent),
		hpl.Knows(hpl.Singleton("p"), hpl.Not(recv)),
		hpl.Sure(hpl.Singleton("q"), sent),
		hpl.Common(hpl.Or(sent, hpl.Not(sent))),
		hpl.Knows(hpl.NewProcSet("p", "q"), hpl.Implies(recv, sent)),
	}
	oracle := hpl.NewChecker(u)
	want := make([][]bool, len(formulas))
	wantValid := make([]bool, len(formulas))
	for i, f := range formulas {
		want[i] = oracle.TruthVector(f)
		wantValid[i] = oracle.Valid(f)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			private := hpl.NewChecker(u)
			for rep := 0; rep < 3; rep++ {
				for fi, f := range formulas {
					if got := ck.Valid(f); got != wantValid[fi] {
						errs <- fmt.Errorf("shared session: Valid(%s) = %v, want %v", f, got, wantValid[fi])
						return
					}
					i := (g*7 + fi + rep) % u.Len()
					if got := ck.HoldsAt(f, i); got != want[fi][i] {
						errs <- fmt.Errorf("shared session: HoldsAt(%s, %d) = %v", f, i, got)
						return
					}
					if rep := private.Check(f); rep.Valid() != wantValid[fi] {
						errs <- fmt.Errorf("private session: Check(%s).Valid = %v", f, rep.Valid())
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCheckerReportMatchesScan pins the vectorized Report fields to a
// per-member scan.
func TestCheckerReportMatchesScan(t *testing.T) {
	ck := freeChecker(t)
	sent := hpl.NewAtom(hpl.SentTag("p", "m"))
	for _, f := range []hpl.Formula{
		sent,
		hpl.Knows(hpl.Singleton("q"), sent),
		hpl.Implies(hpl.Knows(hpl.Singleton("q"), sent), sent),
		hpl.False,
	} {
		rep := ck.Check(f)
		holding, first := 0, -1
		for i := 0; i < ck.Universe().Len(); i++ {
			if ck.HoldsAt(f, i) {
				holding++
			} else if first < 0 {
				first = i
			}
		}
		if rep.Holding != holding || rep.FirstFailure != first || rep.Total != ck.Universe().Len() {
			t.Fatalf("Check(%s) = %+v, want holding %d first %d", f, rep, holding, first)
		}
	}
}

func TestCheckerCheckTemporal(t *testing.T) {
	ck := freeChecker(t)
	sent := hpl.NewAtom(hpl.SentTag("p", "m"))
	recv := hpl.NewAtom(hpl.ReceivedTag("q", "m"))
	kq := hpl.Knows(hpl.Singleton("q"), sent)

	// The gain theorem as a temporal validity: knowing implies a
	// message chain in the past. Valid everywhere, so also at init.
	gain := hpl.AG(hpl.Implies(kq, hpl.Once(recv)))
	rep := ck.CheckTemporal(gain)
	if !rep.AtInit || !rep.Valid() || rep.Init < 0 {
		t.Fatalf("gain: %+v", rep)
	}
	// EF distinguishes init from validity: q can come to know, but
	// does not know everywhere.
	can := ck.CheckTemporal(hpl.EF(kq))
	if !can.AtInit {
		t.Fatalf("EF K{q} b must hold at init: %+v", can)
	}
	know := ck.CheckTemporal(kq)
	if know.AtInit || know.Valid() {
		t.Fatalf("K{q} b must fail at init: %+v", know)
	}
	// The parsed form agrees with the constructed one.
	ck.Define(hpl.SentTag("p", "m"), hpl.ReceivedTag("q", "m"))
	prep, err := ck.ParseAndCheckTemporal(`AG (K{q} "sent(p,m)" -> Once "received(q,m)")`)
	if err != nil {
		t.Fatal(err)
	}
	if prep.AtInit != rep.AtInit || prep.Holding != rep.Holding {
		t.Fatalf("parsed report %+v disagrees with constructed %+v", prep, rep)
	}
	// On a hand-built universe without null, Init is -1 and AtInit false.
	x := hpl.NewBuilder().Internal("p", "a").MustBuild()
	hand := hpl.NewChecker(hpl.NewUniverse([]*hpl.Computation{x}, hpl.NewProcSet("p")))
	if hr := hand.CheckTemporal(hpl.True); hr.Init != -1 || hr.AtInit {
		t.Fatalf("hand-built universe: %+v", hr)
	}
}

// TestCheckerLargeBoundUniverse runs the acceptance scenario for the
// zero-copy enumeration core end to end through the Checker API: a
// three-process free system at MaxEvents=6 (≥100k computations)
// enumerates, partitions, and answers both an epistemic and a temporal
// query. Before the structural-sharing engine this bound was out of
// practical reach.
func TestCheckerLargeBoundUniverse(t *testing.T) {
	if testing.Short() {
		t.Skip("large-bound enumeration skipped in -short mode")
	}
	p := hpl.NewFree(hpl.FreeConfig{
		Procs:    []hpl.ProcID{"p", "q", "r"},
		MaxSends: 2,
	})
	ck, err := hpl.CheckProtocol(p, hpl.WithMaxEvents(6), hpl.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if n := ck.Universe().Len(); n < 100000 {
		t.Fatalf("universe has %d members, want >= 100000", n)
	}
	ck.Define(hpl.SentTag("p", "m"), hpl.ReceivedTag("q", "m"))
	// Fact 4 (knowledge implies truth) must be valid over all ~100k
	// members — this exercises a singleton Partition plus the
	// vectorized Knows all-reduce at the new bound.
	rep, err := ck.ParseAndCheck(`K{q} "sent(p,m)" -> "sent(p,m)"`)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Valid() || rep.Total != ck.Universe().Len() {
		t.Fatalf("fact 4 at MaxEvents=6: %+v", rep)
	}
	// Knowledge gain (Theorem 5 shape) over the fused transition graph.
	trep, err := ck.ParseAndCheckTemporal(`AG (K{q} "sent(p,m)" -> Once "received(q,m)")`)
	if err != nil {
		t.Fatal(err)
	}
	if !trep.AtInit || !trep.Valid() {
		t.Fatalf("gain at MaxEvents=6: %+v", trep)
	}
}
