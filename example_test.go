package hpl_test

import (
	"fmt"

	"hpl"
)

// ExampleChecker_CheckTemporal checks the paper's knowledge-gain
// theorem as a temporal validity: in every reachable computation, if q
// knows that p sent its message, then the message has already arrived —
// knowledge travels only along message chains. EF then shows learning
// is actually reachable from the initial (null) computation.
func ExampleChecker_CheckTemporal() {
	ck := hpl.MustCheckProtocol(hpl.NewFree(hpl.FreeConfig{
		Procs:    []hpl.ProcID{"p", "q"},
		MaxSends: 1,
	}), hpl.WithMaxEvents(4))

	b := hpl.NewAtom(hpl.SentTag("p", "m"))
	knows := hpl.Knows(hpl.Singleton("q"), b)
	arrived := hpl.NewAtom(hpl.ReceivedTag("q", "m"))

	gain := ck.CheckTemporal(hpl.AG(hpl.Implies(knows, hpl.Once(arrived))))
	fmt.Println("gain theorem:", gain.AtInit)

	learns := ck.CheckTemporal(hpl.And(hpl.Not(knows), hpl.EF(knows)))
	fmt.Println("q can learn:", learns.AtInit)

	stable := ck.CheckTemporal(hpl.AG(hpl.Implies(knows, hpl.AG(knows))))
	fmt.Println("once learned, stable:", stable.AtInit)
	// Output:
	// gain theorem: true
	// q can learn: true
	// once learned, stable: true
}
