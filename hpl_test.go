package hpl_test

import (
	"strings"
	"testing"

	"hpl"
)

func TestQuickstartFlow(t *testing.T) {
	c := hpl.NewBuilder().Send("p", "q", "hello").Receive("q", "p").MustBuild()
	ck := hpl.MustCheckProtocol(hpl.NewFree(hpl.FreeConfig{
		Procs:    []hpl.ProcID{"p", "q"},
		MaxSends: 1,
		SendTags: []string{"hello"},
	}), hpl.WithMaxEvents(4))
	b := hpl.NewAtom(hpl.SentTag("p", "hello"))
	if !ck.MustHolds(hpl.Knows(hpl.NewProcSet("q"), b), c) {
		t.Fatalf("q must know b after receiving")
	}
	before := c.Prefix(1)
	if ck.MustHolds(hpl.Knows(hpl.NewProcSet("q"), b), before) {
		t.Fatalf("q must not know b before receiving")
	}
	// The same learning event, phrased temporally: before the receive q
	// does not know b, yet along every extension q's knowledge of b can
	// only appear after the message arrives.
	gain := hpl.AG(hpl.Implies(hpl.Knows(hpl.Singleton("q"), b),
		hpl.Once(hpl.NewAtom(hpl.ReceivedTag("q", "hello")))))
	if rep := ck.CheckTemporal(gain); !rep.AtInit || !rep.Valid() {
		t.Fatalf("gain theorem must hold temporally: %+v", rep)
	}
}

// TestExtendStrengthensGainTheorem grows a universe incrementally and
// re-checks Theorem 5's temporal form at each bound: a larger MaxEvents
// means longer message chains, so each extension is a strictly stronger
// witness of the same law.
func TestExtendStrengthensGainTheorem(t *testing.T) {
	ck := hpl.MustCheckProtocol(hpl.NewFree(hpl.FreeConfig{
		Procs:    []hpl.ProcID{"p", "q"},
		MaxSends: 1,
		SendTags: []string{"hello"},
	}), hpl.WithMaxEvents(3))
	b := hpl.NewAtom(hpl.SentTag("p", "hello"))
	gain := hpl.AG(hpl.Implies(hpl.Knows(hpl.Singleton("q"), b),
		hpl.Once(hpl.NewAtom(hpl.ReceivedTag("q", "hello")))))

	u := ck.Universe()
	for _, bound := range []int{4, 5, 6} {
		var err error
		u, err = hpl.ExtendUniverse(u, hpl.WithMaxEvents(bound))
		if err != nil {
			t.Fatalf("extend to %d: %v", bound, err)
		}
		rep := hpl.NewChecker(u).CheckTemporal(gain)
		if !rep.AtInit || !rep.Valid() {
			t.Fatalf("gain theorem must hold at MaxEvents=%d (%d members): %+v",
				bound, u.Len(), rep)
		}
	}
}

func TestFacadeIsomorphism(t *testing.T) {
	x := hpl.NewBuilder().Internal("p", "a").Internal("q", "b").MustBuild()
	y := hpl.NewBuilder().Internal("q", "b").Internal("p", "a").MustBuild()
	label := hpl.LargestLabel(x, y, hpl.NewProcSet("p", "q"))
	if !label.Equal(hpl.NewProcSet("p", "q")) {
		t.Fatalf("label = %v", label)
	}
	u := hpl.NewUniverse([]*hpl.Computation{x, y, hpl.Empty()}, hpl.NewProcSet("p", "q"))
	if !hpl.Related(u, x, []hpl.ProcSet{hpl.Singleton("p"), hpl.Singleton("q")}, y) {
		t.Fatalf("x [p q] y must hold")
	}
}

func TestFacadeFusion(t *testing.T) {
	all := hpl.NewProcSet("p", "q")
	x := hpl.Empty()
	y := hpl.NewBuilder().Internal("p", "work").MustBuild()
	z := hpl.NewBuilder().Internal("q", "work").MustBuild()
	f, err := hpl.Theorem2(x, y, z, hpl.Singleton("p"), all)
	if err != nil {
		t.Fatal(err)
	}
	if f.W.Len() != 2 {
		t.Fatalf("w len = %d", f.W.Len())
	}
	sq, err := hpl.Lemma1(x, y, z, hpl.Singleton("q"), hpl.Singleton("p"), all)
	if err != nil {
		t.Fatal(err)
	}
	if sq.W.Len() != 2 {
		t.Fatalf("square w len = %d", sq.W.Len())
	}
}

func TestFacadeFormulaLanguage(t *testing.T) {
	vocab := hpl.NewVocabulary(hpl.SentTag("p", "m"))
	f, err := hpl.ParseFormula(`K{q} "sent(p,m)"`, vocab)
	if err != nil {
		t.Fatal(err)
	}
	printed := hpl.PrintFormula(f)
	if !strings.Contains(printed, "K{q}") {
		t.Fatalf("printed = %q", printed)
	}
	re, err := hpl.ParseFormula(printed, vocab)
	if err != nil || re.Key() != f.Key() {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestFacadeDiagram(t *testing.T) {
	x := hpl.NewBuilder().Internal("p", "a").MustBuild()
	y := hpl.NewBuilder().Internal("p", "a").Internal("q", "c").MustBuild()
	d := hpl.NewDiagram([]hpl.Vertex{{Name: "x", Comp: x}, {Name: "y", Comp: y}}, hpl.NewProcSet("p", "q"))
	label, ok := d.EdgeBetween("x", "y")
	if !ok || label.Key() != "p" {
		t.Fatalf("edge = %v %v", label, ok)
	}
	if !strings.Contains(d.DOT("t"), "graph") {
		t.Fatalf("DOT output broken")
	}
}

func TestFacadePredicates(t *testing.T) {
	c := hpl.NewBuilder().
		Send("p", "q", "token").
		Receive("q", "p").
		Internal("q", "work").
		MustBuild()
	if !hpl.SentTag("p", "token").Holds(c) {
		t.Errorf("SentTag")
	}
	if !hpl.ReceivedTag("q", "token").Holds(c) {
		t.Errorf("ReceivedTag")
	}
	if !hpl.DidInternal("q", "work").Holds(c) {
		t.Errorf("DidInternal")
	}
	if !hpl.TokenAt("q", "p", "token").Holds(c) {
		t.Errorf("TokenAt")
	}
	custom := hpl.NewPredicate("long", func(c *hpl.Computation) bool { return c.Len() > 2 })
	if !custom.Holds(c) {
		t.Errorf("custom predicate")
	}
}

func TestFacadeFormulaConstructors(t *testing.T) {
	b := hpl.NewAtom(hpl.SentTag("p", "m"))
	f := hpl.Implies(hpl.And(b, hpl.True), hpl.Or(hpl.Not(b), hpl.False))
	if f.Key() == "" {
		t.Fatalf("empty key")
	}
	g := hpl.Common(hpl.Sure(hpl.Singleton("p"), b))
	if g.String() == "" {
		t.Fatalf("empty string")
	}
}
